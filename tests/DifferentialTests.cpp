//===- DifferentialTests.cpp - Randomized differential-testing harness ------===//
//
// Seeded property-based testing of the whole execution stack: random graphs
// and embedding sizes drive every surviving plan candidate of GCN / GAT /
// SAGE through the legacy, arena, and reordered execution paths at 1 and 4
// threads, comparing everything against a from-scratch double-precision
// reference implementation written with plain loops (no kernel-library
// code on the reference side).
//
// Comparison contract (see Executor.h):
//  - legacy vs arena, and 1 thread vs 4 threads: bitwise identical
//    (row-parallelism never splits one row's accumulation),
//  - reordered vs unreordered: <= 1e-5 relative after the executor's
//    inverse row permutation (relabeling reorders each row's neighbor
//    summation, so bitwise equality is impossible by construction),
//  - naive reference: small tolerance (float kernels vs double loops).
//
// Every instance is deterministic in its seed; failures print the seed so a
// reproduction is one test-filter run away.
//
//===----------------------------------------------------------------------===//

#include "assoc/Enumerate.h"
#include "assoc/Prune.h"
#include "graph/Generators.h"
#include "graph/Reorder.h"
#include "granii/Granii.h"
#include "kernels/Dispatch.h"
#include "models/Models.h"
#include "runtime/Executor.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

using namespace granii;

namespace {

//===----------------------------------------------------------------------===//
// Naive dense reference (double accumulation, plain loops)
//===----------------------------------------------------------------------===//

DenseMatrix refGemm(const DenseMatrix &A, const DenseMatrix &B) {
  DenseMatrix C(A.rows(), B.cols());
  for (int64_t I = 0; I < A.rows(); ++I)
    for (int64_t J = 0; J < B.cols(); ++J) {
      double Acc = 0.0;
      for (int64_t K = 0; K < A.cols(); ++K)
        Acc += static_cast<double>(A.at(I, K)) * B.at(K, J);
      C.at(I, J) = static_cast<float>(Acc);
    }
  return C;
}

/// Sum of neighbor rows: Out[i, :] = sum_{j in N(i)} H[j, :].
DenseMatrix refAggregate(const CsrMatrix &A, const DenseMatrix &H) {
  DenseMatrix Out(A.rows(), H.cols());
  const auto &Off = A.rowOffsets();
  const auto &Col = A.colIndices();
  for (int64_t I = 0; I < A.rows(); ++I)
    for (int64_t C = 0; C < H.cols(); ++C) {
      double Acc = 0.0;
      for (int64_t K = Off[static_cast<size_t>(I)];
           K < Off[static_cast<size_t>(I) + 1]; ++K)
        Acc += H.at(Col[static_cast<size_t>(K)], C);
      Out.at(I, C) = static_cast<float>(Acc);
    }
  return Out;
}

void refRowScale(const std::vector<double> &D, DenseMatrix &H) {
  for (int64_t I = 0; I < H.rows(); ++I)
    for (int64_t C = 0; C < H.cols(); ++C)
      H.at(I, C) = static_cast<float>(D[static_cast<size_t>(I)] * H.at(I, C));
}

void refRelu(DenseMatrix &H) {
  for (int64_t I = 0; I < H.rows(); ++I)
    for (int64_t C = 0; C < H.cols(); ++C)
      H.at(I, C) = std::max(0.0f, H.at(I, C));
}

std::vector<double> refInvSqrtDegree(const CsrMatrix &A) {
  std::vector<double> D(static_cast<size_t>(A.rows()));
  for (int64_t I = 0; I < A.rows(); ++I)
    D[static_cast<size_t>(I)] =
        A.rowNnz(I) > 0 ? 1.0 / std::sqrt(static_cast<double>(A.rowNnz(I)))
                        : 0.0;
  return D;
}

/// relu(D^-1/2 A D^-1/2 H W).
DenseMatrix refGcn(const CsrMatrix &A, const DenseMatrix &H,
                   const DenseMatrix &W) {
  std::vector<double> D = refInvSqrtDegree(A);
  DenseMatrix X = H;
  refRowScale(D, X);
  X = refAggregate(A, X);
  X = refGemm(X, W);
  refRowScale(D, X);
  refRelu(X);
  return X;
}

/// relu(H Wself + D^-1 A H Wneigh).
DenseMatrix refSage(const CsrMatrix &A, const DenseMatrix &H,
                    const DenseMatrix &Wself, const DenseMatrix &Wneigh) {
  std::vector<double> Dinv(static_cast<size_t>(A.rows()));
  for (int64_t I = 0; I < A.rows(); ++I)
    Dinv[static_cast<size_t>(I)] =
        A.rowNnz(I) > 0 ? 1.0 / static_cast<double>(A.rowNnz(I)) : 0.0;
  DenseMatrix Mean = refAggregate(A, H);
  refRowScale(Dinv, Mean);
  DenseMatrix Out = refGemm(H, Wself);
  DenseMatrix Neigh = refGemm(Mean, Wneigh);
  for (int64_t I = 0; I < Out.rows(); ++I)
    for (int64_t C = 0; C < Out.cols(); ++C)
      Out.at(I, C) += Neigh.at(I, C);
  refRelu(Out);
  return Out;
}

/// Theta = H W; e_ij = leakyrelu(asrc . Theta_i + adst . Theta_j);
/// alpha = row-softmax(e); relu(alpha Theta).
DenseMatrix refGat(const CsrMatrix &A, const DenseMatrix &H,
                   const DenseMatrix &W, const std::vector<float> &Asrc,
                   const std::vector<float> &Adst) {
  DenseMatrix Theta = refGemm(H, W);
  auto Dot = [&](const std::vector<float> &V, int64_t Row) {
    double Acc = 0.0;
    for (int64_t C = 0; C < Theta.cols(); ++C)
      Acc += static_cast<double>(V[static_cast<size_t>(C)]) * Theta.at(Row, C);
    return Acc;
  };
  const auto &Off = A.rowOffsets();
  const auto &Col = A.colIndices();
  std::vector<double> Alpha(static_cast<size_t>(A.nnz()));
  for (int64_t I = 0; I < A.rows(); ++I) {
    int64_t B = Off[static_cast<size_t>(I)], E = Off[static_cast<size_t>(I) + 1];
    if (B == E)
      continue;
    double RowMax = 0.0;
    for (int64_t K = B; K < E; ++K) {
      double S = Dot(Asrc, I) + Dot(Adst, Col[static_cast<size_t>(K)]);
      if (S < 0.0)
        S *= 0.2; // leaky ReLU, default slope
      Alpha[static_cast<size_t>(K)] = S;
      RowMax = K == B ? S : std::max(RowMax, S);
    }
    double Sum = 0.0;
    for (int64_t K = B; K < E; ++K) {
      Alpha[static_cast<size_t>(K)] =
          std::exp(Alpha[static_cast<size_t>(K)] - RowMax);
      Sum += Alpha[static_cast<size_t>(K)];
    }
    for (int64_t K = B; K < E; ++K)
      Alpha[static_cast<size_t>(K)] /= Sum;
  }
  DenseMatrix Out(A.rows(), Theta.cols());
  for (int64_t I = 0; I < A.rows(); ++I)
    for (int64_t C = 0; C < Theta.cols(); ++C) {
      double Acc = 0.0;
      for (int64_t K = Off[static_cast<size_t>(I)];
           K < Off[static_cast<size_t>(I) + 1]; ++K)
        Acc += Alpha[static_cast<size_t>(K)] *
               Theta.at(Col[static_cast<size_t>(K)], C);
      Out.at(I, C) = std::max(0.0f, static_cast<float>(Acc));
    }
  return Out;
}

DenseMatrix naiveReference(const GnnModel &M, const LayerParams &Params) {
  switch (M.Kind) {
  case ModelKind::GCN:
    return refGcn(Params.AdjSelf, Params.Features, Params.Weights.at("W"));
  case ModelKind::SAGE:
    return refSage(Params.AdjSelf, Params.Features,
                   Params.Weights.at("Wself"), Params.Weights.at("Wneigh"));
  case ModelKind::GAT:
    return refGat(Params.AdjSelf, Params.Features, Params.Weights.at("W"),
                  Params.AttnVecs.at("asrc"), Params.AttnVecs.at("adst"));
  default:
    ADD_FAILURE() << "no naive reference for model";
    return DenseMatrix();
  }
}

//===----------------------------------------------------------------------===//
// Random instance generation
//===----------------------------------------------------------------------===//

struct Instance {
  uint64_t Seed = 0;
  ModelKind Kind = ModelKind::GCN;
  Graph G;
  int64_t KIn = 0, KOut = 0;
  std::string Desc; ///< printed on failure for reproduction
};

Instance makeInstance(uint64_t Seed) {
  Rng R(Seed);
  Instance Inst;
  Inst.Seed = Seed;
  const ModelKind Kinds[] = {ModelKind::GCN, ModelKind::GAT, ModelKind::SAGE};
  Inst.Kind = Kinds[R.nextBelow(3)];
  int64_t N = 50 + static_cast<int64_t>(R.nextBelow(200));
  int64_t E = N * (2 + static_cast<int64_t>(R.nextBelow(6)));
  switch (R.nextBelow(3)) {
  case 0:
    // Skewed power-law: the case reordering exists for.
    Inst.G = makeRmat(N, E, 0.55, 0.2, 0.15, Seed * 11 + 1);
    break;
  case 1:
    Inst.G = makeErdosRenyi(N, E, Seed * 13 + 2);
    break;
  default:
    Inst.G = makeCommunityGraph(8, N / 8, 0.5, E / 4, Seed * 17 + 3);
    break;
  }
  // Cover both K_in >= K_out and K_in < K_out scenarios (the dispatch the
  // plan-viability conditions key on).
  Inst.KIn = 3 + static_cast<int64_t>(R.nextBelow(30));
  Inst.KOut = 3 + static_cast<int64_t>(R.nextBelow(30));
  Inst.Desc = "seed=" + std::to_string(Seed) + " model=" +
              modelName(Inst.Kind) + " graph=" + Inst.G.name() +
              " n=" + std::to_string(Inst.G.numNodes()) +
              " e=" + std::to_string(Inst.G.numEdges()) +
              " kin=" + std::to_string(Inst.KIn) +
              " kout=" + std::to_string(Inst.KOut);
  return Inst;
}

std::vector<CompositionPlan> survivingPlans(const GnnModel &M) {
  return pruneCompositions(enumerateCompositions(M.Root));
}

} // namespace

//===----------------------------------------------------------------------===//
// Main differential property: >= 20 random instances, every surviving plan,
// {legacy, arena, reordered} x {1, 4 threads}, vs the naive reference.
//===----------------------------------------------------------------------===//

TEST(Differential, AllPathsAgreeOnRandomInstances) {
  constexpr uint64_t NumInstances = 24; // acceptance floor is 20
  for (uint64_t I = 0; I < NumInstances; ++I) {
    Instance Inst = makeInstance(1000 + I);
    SCOPED_TRACE(Inst.Desc);
    GnnModel M = makeModel(Inst.Kind);
    LayerParams Params =
        makeLayerParams(M, Inst.G, Inst.KIn, Inst.KOut, Inst.Seed);
    DenseMatrix Naive = naiveReference(M, Params);
    std::vector<CompositionPlan> Plans = survivingPlans(M);
    ASSERT_FALSE(Plans.empty());
    // Alternate the policy so both orderings see every model/graph class.
    ReorderPolicy Policy = I % 2 == 0 ? ReorderPolicy::Rcm
                                      : ReorderPolicy::Degree;

    for (size_t PI = 0; PI < Plans.size(); ++PI) {
      SCOPED_TRACE("plan " + std::to_string(PI));
      const CompositionPlan &Plan = Plans[PI];
      DimBinding Binding = Params.inputs().binding(&Plan);

      // --- 1 thread ---------------------------------------------------
      Executor E1(HardwareModel::byName("cpu"), /*NumThreads=*/1);
      DenseMatrix Legacy1 =
          E1.run(Plan, Params.inputs(), Params.Stats).Output;

      // Semantics: every surviving candidate computes the model.
      EXPECT_TRUE(Legacy1.approxEquals(Naive, 3e-3f, 3e-3f))
          << "diverges from naive reference by " << Legacy1.maxAbsDiff(Naive);

      // Arena path is bitwise identical to the legacy path.
      PlanWorkspace Ws;
      Ws.configure(Plan, Binding, /*Training=*/false);
      ExecResult Arena1;
      E1.run(Plan, Params.inputs(), Params.Stats, Ws, Arena1);
      EXPECT_EQ(Arena1.Output.maxAbsDiff(Legacy1), 0.0f)
          << "arena output differs from legacy";

      // Reordered execution matches within 1e-5 relative after the inverse
      // permutation (summation order differs, bitwise cannot hold).
      PlanWorkspace WsR;
      WsR.configure(Plan, Binding, /*Training=*/false);
      ExecResult Reord1;
      E1.run(Plan, Params.inputs(), Params.Stats, WsR, Reord1, Policy);
      EXPECT_EQ(Reord1.Output.rows(), Legacy1.rows());
      EXPECT_TRUE(Reord1.Output.approxEquals(Legacy1, 1e-5f, 1e-5f))
          << reorderPolicyName(Policy) << " output differs by "
          << Reord1.Output.maxAbsDiff(Legacy1);

      // --- 4 threads --------------------------------------------------
      Executor E4(HardwareModel::byName("cpu"), /*NumThreads=*/4);
      DenseMatrix Legacy4 =
          E4.run(Plan, Params.inputs(), Params.Stats).Output;
      // Row-parallel kernels never split one row's reduction, so thread
      // count must not change a single bit.
      EXPECT_EQ(Legacy4.maxAbsDiff(Legacy1), 0.0f)
          << "thread count changed the output";

      ExecResult Arena4, Reord4;
      E4.run(Plan, Params.inputs(), Params.Stats, Ws, Arena4);
      EXPECT_EQ(Arena4.Output.maxAbsDiff(Legacy1), 0.0f);
      E4.run(Plan, Params.inputs(), Params.Stats, WsR, Reord4, Policy);
      EXPECT_EQ(Reord4.Output.maxAbsDiff(Reord1.Output), 0.0f)
          << "reordered path not thread-deterministic";

      // --- zero steady-state allocations ------------------------------
      // The warm-up runs above populated every buffer (including the
      // reorder staging); from here on, repeated runs allocate nothing.
      Ws.resetAllocationCount();
      WsR.resetAllocationCount();
      E4.run(Plan, Params.inputs(), Params.Stats, Ws, Arena4);
      E4.run(Plan, Params.inputs(), Params.Stats, WsR, Reord4, Policy);
      EXPECT_EQ(Ws.allocationCount(), 0u) << "arena steady state allocated";
      EXPECT_EQ(WsR.allocationCount(), 0u)
          << "reordered steady state allocated";
    }
  }
}

//===----------------------------------------------------------------------===//
// Multi-format differential: every forward storage format, plus auto
//===----------------------------------------------------------------------===//

// For each random model x graph instance and every supported forward format:
// the format's executor output agrees with the naive reference, agrees with
// the CSR baseline within 1e-5 (the format kernels accumulate each row's
// neighbors in CSR order, so in practice this is bitwise), and 1 vs 4
// threads stays bitwise identical within the format (row partitioning never
// splits one row's reduction, whatever the storage layout).
TEST(Differential, FormatSweepAgreesAcrossFormats) {
  for (uint64_t I = 0; I < 8; ++I) {
    Instance Inst = makeInstance(6000 + I);
    SCOPED_TRACE(Inst.Desc);
    GnnModel M = makeModel(Inst.Kind);
    LayerParams Params =
        makeLayerParams(M, Inst.G, Inst.KIn, Inst.KOut, Inst.Seed);
    DenseMatrix Naive = naiveReference(M, Params);
    std::vector<CompositionPlan> Plans = survivingPlans(M);
    ASSERT_FALSE(Plans.empty());
    const CompositionPlan &Plan = Plans[I % Plans.size()];
    DimBinding Binding = Params.inputs().binding(&Plan);

    Executor E1(HardwareModel::byName("cpu"), /*NumThreads=*/1);
    Executor E4(HardwareModel::byName("cpu"), /*NumThreads=*/4);
    PlanWorkspace WsCsr;
    WsCsr.configure(Plan, Binding, /*Training=*/false);
    ExecResult Csr1;
    E1.run(Plan, Params.inputs(), Params.Stats, WsCsr, Csr1);
    EXPECT_TRUE(Csr1.Output.approxEquals(Naive, 3e-3f, 3e-3f))
        << "CSR diverges from naive reference by "
        << Csr1.Output.maxAbsDiff(Naive);

    for (SparseFormat Format : forwardSparseFormats()) {
      if (Format == SparseFormat::Csr)
        continue;
      SCOPED_TRACE(sparseFormatName(Format));
      PlanWorkspace Ws1, Ws4;
      Ws1.configure(Plan, Binding, /*Training=*/false);
      Ws4.configure(Plan, Binding, /*Training=*/false);
      ExecResult R1, R4;
      E1.run(Plan, Params.inputs(), Params.Stats, Ws1, R1,
             ReorderPolicy::None, Format);
      E4.run(Plan, Params.inputs(), Params.Stats, Ws4, R4,
             ReorderPolicy::None, Format);

      EXPECT_TRUE(R1.Output.approxEquals(Naive, 3e-3f, 3e-3f))
          << "diverges from naive reference by "
          << R1.Output.maxAbsDiff(Naive);
      EXPECT_TRUE(R1.Output.approxEquals(Csr1.Output, 1e-5f, 1e-5f))
          << "diverges from the CSR baseline by "
          << R1.Output.maxAbsDiff(Csr1.Output);
      EXPECT_EQ(R4.Output.maxAbsDiff(R1.Output), 0.0f)
          << "thread count changed the output under this format";
    }
  }
}

// Training under every forward format: gradients agree with the CSR
// baseline. The backward pass always walks a CSC view of the adjacency for
// the transposed SpMM and routes the dS SDDMM through the format structure,
// so this exercises both the CSC kernel and the per-format SDDMM variants.
TEST(Differential, FormatTrainingMatchesCsrBaseline) {
  for (uint64_t I = 0; I < 4; ++I) {
    Instance Inst = makeInstance(7000 + I);
    SCOPED_TRACE(Inst.Desc);
    GnnModel M = makeModel(Inst.Kind);
    LayerParams Params =
        makeLayerParams(M, Inst.G, Inst.KIn, Inst.KOut, Inst.Seed);
    std::vector<CompositionPlan> Plans = survivingPlans(M);
    ASSERT_FALSE(Plans.empty());
    const CompositionPlan &Plan = Plans[I % Plans.size()];
    DimBinding Binding = Params.inputs().binding(&Plan);
    Executor Exec(HardwareModel::byName("cpu"), /*NumThreads=*/2);

    PlanWorkspace WsCsr;
    WsCsr.configure(Plan, Binding, /*Training=*/true);
    ExecResult Base;
    Exec.runTraining(Plan, Params.inputs(), Params.Stats, WsCsr, Base);

    for (SparseFormat Format : forwardSparseFormats()) {
      if (Format == SparseFormat::Csr)
        continue;
      SCOPED_TRACE(sparseFormatName(Format));
      PlanWorkspace Ws;
      Ws.configure(Plan, Binding, /*Training=*/true);
      ExecResult R;
      Exec.runTraining(Plan, Params.inputs(), Params.Stats, Ws, R,
                       ReorderPolicy::None, Format);
      EXPECT_TRUE(R.Output.approxEquals(Base.Output, 1e-5f, 1e-5f));
      for (const auto &[Name, DW] : Base.WeightGrads) {
        ASSERT_TRUE(R.WeightGrads.count(Name));
        EXPECT_TRUE(R.WeightGrads.at(Name).approxEquals(DW, 1e-5f, 1e-5f))
            << "grad " << Name << " differs by "
            << R.WeightGrads.at(Name).maxAbsDiff(DW);
      }
      if (!Base.FeatureGrad.empty()) {
        ASSERT_EQ(R.FeatureGrad.rows(), Base.FeatureGrad.rows());
        EXPECT_TRUE(
            R.FeatureGrad.approxEquals(Base.FeatureGrad, 1e-5f, 1e-5f))
            << "feature grad differs by "
            << R.FeatureGrad.maxAbsDiff(Base.FeatureGrad);
      }
    }
  }
}

// End-to-end with --format=auto through the public Optimizer API: whatever
// format the joint (plan, format) argmin picks, the result matches the
// pinned-CSR baseline.
TEST(Differential, AutoFormatOptionMatchesCsrBaseline) {
  Graph G = makeRmat(220, 1400, 0.55, 0.2, 0.15, 42);
  for (ModelKind Kind : {ModelKind::GCN, ModelKind::SAGE, ModelKind::GAT}) {
    SCOPED_TRACE(modelName(Kind));
    GnnModel M = makeModel(Kind);
    OptimizerOptions Base;
    Base.Hw = HardwareModel::byName("cpu");
    Base.Verify = VerifyLevel::Full;
    AnalyticCostModel Cost(Base.Hw);
    OptimizerOptions WithAuto = Base;
    WithAuto.Format = SparseFormat::Auto;
    Optimizer Plain(M, Base, &Cost);
    Optimizer Auto(M, WithAuto, &Cost);

    LayerParams Params = makeLayerParams(M, G, 16, 24, 5);
    Selection SelP = Plain.select(G, 16, 24);
    Selection SelA = Auto.select(G, 16, 24);
    EXPECT_EQ(SelP.Format, SparseFormat::Csr);
    EXPECT_NE(SelA.Format, SparseFormat::Auto); // resolved to a concrete one
    DenseMatrix OutP = Plain.execute(SelP, Params, false).Output;
    DenseMatrix OutA = Auto.execute(SelA, Params, false).Output;
    EXPECT_TRUE(OutA.approxEquals(OutP, 1e-5f, 1e-5f))
        << "differs by " << OutA.maxAbsDiff(OutP);
  }
}

//===----------------------------------------------------------------------===//
// Cross-ISA differential: every SIMD level this build/host supports
//===----------------------------------------------------------------------===//

namespace {

/// Restores the entry ISA level even when an ASSERT unwinds the test body.
struct IsaLevelGuard {
  kernels::IsaLevel Entry = kernels::activeIsaLevel();
  ~IsaLevelGuard() { kernels::setIsaLevel(Entry); }
};

} // namespace

// For each supported level: 1 vs 4 threads stays bitwise identical (the
// dispatched routines never split one row's reduction), the level agrees
// with the scalar level within 1e-5 relative (vector FMA contraction and
// grouped horizontal sums are the only differences), and everything stays
// within the float-vs-double tolerance of the naive reference.
TEST(Differential, IsaLevelsAgreeAndStayThreadDeterministic) {
  IsaLevelGuard Guard;
  for (uint64_t I = 0; I < 6; ++I) {
    Instance Inst = makeInstance(4000 + I);
    SCOPED_TRACE(Inst.Desc);
    GnnModel M = makeModel(Inst.Kind);
    LayerParams Params =
        makeLayerParams(M, Inst.G, Inst.KIn, Inst.KOut, Inst.Seed);
    DenseMatrix Naive = naiveReference(M, Params);
    std::vector<CompositionPlan> Plans = survivingPlans(M);
    ASSERT_FALSE(Plans.empty());
    const CompositionPlan &Plan = Plans[I % Plans.size()];

    std::optional<DenseMatrix> ScalarOut;
    for (kernels::IsaLevel Level : kernels::supportedIsaLevels()) {
      SCOPED_TRACE(kernels::isaLevelName(Level));
      ASSERT_TRUE(kernels::setIsaLevel(Level));

      Executor E1(HardwareModel::byName("cpu"), /*NumThreads=*/1);
      DenseMatrix Out1 = E1.run(Plan, Params.inputs(), Params.Stats).Output;
      Executor E4(HardwareModel::byName("cpu"), /*NumThreads=*/4);
      DenseMatrix Out4 = E4.run(Plan, Params.inputs(), Params.Stats).Output;
      EXPECT_EQ(Out4.maxAbsDiff(Out1), 0.0f)
          << "thread count changed the output at this ISA level";

      EXPECT_TRUE(Out1.approxEquals(Naive, 3e-3f, 3e-3f))
          << "diverges from naive reference by " << Out1.maxAbsDiff(Naive);
      if (!ScalarOut) {
        // supportedIsaLevels() always starts with Scalar.
        ASSERT_EQ(Level, kernels::IsaLevel::Scalar);
        ScalarOut = std::move(Out1);
      } else {
        EXPECT_TRUE(Out1.approxEquals(*ScalarOut, 1e-5f, 1e-5f))
            << "diverges from the scalar level by "
            << Out1.maxAbsDiff(*ScalarOut);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Training differential: gradients under reordering
//===----------------------------------------------------------------------===//

TEST(Differential, ReorderedTrainingMatchesUnreordered) {
  for (uint64_t I = 0; I < 6; ++I) {
    Instance Inst = makeInstance(9000 + I);
    SCOPED_TRACE(Inst.Desc);
    GnnModel M = makeModel(Inst.Kind);
    LayerParams Params =
        makeLayerParams(M, Inst.G, Inst.KIn, Inst.KOut, Inst.Seed);
    std::vector<CompositionPlan> Plans = survivingPlans(M);
    ASSERT_FALSE(Plans.empty());
    const CompositionPlan &Plan = Plans[I % Plans.size()];
    DimBinding Binding = Params.inputs().binding(&Plan);
    Executor Exec(HardwareModel::byName("cpu"), /*NumThreads=*/2);

    PlanWorkspace Ws, WsR;
    Ws.configure(Plan, Binding, /*Training=*/true);
    WsR.configure(Plan, Binding, /*Training=*/true);
    ExecResult Base, Reord;
    Exec.runTraining(Plan, Params.inputs(), Params.Stats, Ws, Base);
    Exec.runTraining(Plan, Params.inputs(), Params.Stats, WsR, Reord,
                     ReorderPolicy::Rcm);

    EXPECT_TRUE(Reord.Output.approxEquals(Base.Output, 1e-5f, 1e-5f));
    // Weight and attention gradients are sums over rows/edges: invariant
    // under relabeling up to summation order.
    for (const auto &[Name, DW] : Base.WeightGrads) {
      ASSERT_TRUE(Reord.WeightGrads.count(Name));
      EXPECT_TRUE(Reord.WeightGrads.at(Name).approxEquals(DW, 1e-4f, 1e-4f))
          << "grad " << Name << " differs by "
          << Reord.WeightGrads.at(Name).maxAbsDiff(DW);
    }
    // The feature gradient is row-indexed and must come back in the
    // caller's vertex order.
    if (!Base.FeatureGrad.empty()) {
      ASSERT_EQ(Reord.FeatureGrad.rows(), Base.FeatureGrad.rows());
      EXPECT_TRUE(
          Reord.FeatureGrad.approxEquals(Base.FeatureGrad, 1e-4f, 1e-4f))
          << "feature grad differs by "
          << Reord.FeatureGrad.maxAbsDiff(Base.FeatureGrad);
    }
  }
}

//===----------------------------------------------------------------------===//
// The identity policy is exactly the arena path
//===----------------------------------------------------------------------===//

TEST(Differential, NonePolicyIsBitwiseBaseline) {
  Instance Inst = makeInstance(777);
  GnnModel M = makeModel(Inst.Kind);
  LayerParams Params =
      makeLayerParams(M, Inst.G, Inst.KIn, Inst.KOut, Inst.Seed);
  std::vector<CompositionPlan> Plans = survivingPlans(M);
  ASSERT_FALSE(Plans.empty());
  DimBinding Binding = Params.inputs().binding(&Plans[0]);
  Executor Exec(HardwareModel::byName("cpu"), /*NumThreads=*/2);
  PlanWorkspace A, B;
  A.configure(Plans[0], Binding, false);
  B.configure(Plans[0], Binding, false);
  ExecResult Ra, Rb;
  Exec.run(Plans[0], Params.inputs(), Params.Stats, A, Ra);
  Exec.run(Plans[0], Params.inputs(), Params.Stats, B, Rb,
           ReorderPolicy::None);
  EXPECT_EQ(Rb.Output.maxAbsDiff(Ra.Output), 0.0f);
}

//===----------------------------------------------------------------------===//
// End-to-end through the public Optimizer API with reordering enabled
//===----------------------------------------------------------------------===//

TEST(Differential, OptimizerReorderOptionMatchesBaseline) {
  Graph G = makeRmat(220, 1400, 0.55, 0.2, 0.15, 42);
  for (ModelKind Kind : {ModelKind::GCN, ModelKind::SAGE, ModelKind::GAT}) {
    SCOPED_TRACE(modelName(Kind));
    GnnModel M = makeModel(Kind);
    OptimizerOptions Base;
    Base.Hw = HardwareModel::byName("cpu");
    // The differential harness runs the strictest verification: every
    // enumerated candidate is checked pre-prune and each execution
    // cross-checks its buffer schedule and row partition.
    Base.Verify = VerifyLevel::Full;
    AnalyticCostModel Cost(Base.Hw);
    OptimizerOptions WithReorder = Base;
    WithReorder.Reorder = ReorderPolicy::Rcm;
    Optimizer Plain(M, Base, &Cost);
    Optimizer Reordered(M, WithReorder, &Cost);

    LayerParams Params = makeLayerParams(M, G, 16, 24, 5);
    Selection SelP = Plain.select(G, 16, 24);
    Selection SelR = Reordered.select(G, 16, 24);
    EXPECT_EQ(SelP.PlanIndex, SelR.PlanIndex); // same candidates, same stats
    DenseMatrix OutP = Plain.execute(SelP, Params, false).Output;
    DenseMatrix OutR = Reordered.execute(SelR, Params, false).Output;
    EXPECT_TRUE(OutR.approxEquals(OutP, 1e-5f, 1e-5f))
        << "differs by " << OutR.maxAbsDiff(OutP);
  }
}

//===----------------------------------------------------------------------===//
// Sharded execution: bitwise identical to the whole-graph CSR path
//===----------------------------------------------------------------------===//
//
// The sharding contract (docs/SHARDING.md) is stronger than the reorder
// one: partitioning must not change a single bit of the output or the
// gradients, at any shard count and any thread count, because every owned
// row's neighbor reduction replays the whole-graph kernel's operation
// order exactly. These sweeps drive the full Executor path (setup, halo
// staging, forward, backward) rather than the shard kernels in isolation.

namespace {

bool bitwiseEqualDense(const DenseMatrix &A, const DenseMatrix &B) {
  return A.rows() == B.rows() && A.cols() == B.cols() &&
         std::memcmp(A.data(), B.data(),
                     static_cast<size_t>(A.size()) * sizeof(float)) == 0;
}

} // namespace

TEST(Differential, ShardedForwardIsBitwiseWholeGraph) {
  for (uint64_t I = 0; I < 6; ++I) {
    Instance Inst = makeInstance(8000 + I);
    SCOPED_TRACE(Inst.Desc);
    GnnModel M = makeModel(Inst.Kind);
    LayerParams Params =
        makeLayerParams(M, Inst.G, Inst.KIn, Inst.KOut, Inst.Seed);
    std::vector<CompositionPlan> Plans = survivingPlans(M);
    ASSERT_FALSE(Plans.empty());
    const CompositionPlan &Plan = Plans[I % Plans.size()];
    DimBinding Binding = Params.inputs().binding(&Plan);

    Executor E1(HardwareModel::byName("cpu"), /*NumThreads=*/1);
    PlanWorkspace WsBase;
    WsBase.configure(Plan, Binding, /*Training=*/false);
    ExecResult Base;
    E1.run(Plan, Params.inputs(), Params.Stats, WsBase, Base);

    for (int Shards : {2, 4}) {
      for (int Threads : {1, 4}) {
        SCOPED_TRACE("shards=" + std::to_string(Shards) +
                     " threads=" + std::to_string(Threads));
        Executor E(HardwareModel::byName("cpu"), Threads);
        PlanWorkspace Ws;
        Ws.configure(Plan, Binding, /*Training=*/false);
        ExecResult R;
        E.run(Plan, Params.inputs(), Params.Stats, Ws, R,
              ReorderPolicy::None, SparseFormat::Csr,
              ShardSpec{Shards, ""});
        EXPECT_TRUE(bitwiseEqualDense(R.Output, Base.Output))
            << "sharded forward differs from whole-graph by "
            << R.Output.maxAbsDiff(Base.Output);
      }
    }
  }
}

TEST(Differential, ShardedTrainingGradientsAreBitwise) {
  for (uint64_t I = 0; I < 4; ++I) {
    Instance Inst = makeInstance(8100 + I);
    SCOPED_TRACE(Inst.Desc);
    GnnModel M = makeModel(Inst.Kind);
    LayerParams Params =
        makeLayerParams(M, Inst.G, Inst.KIn, Inst.KOut, Inst.Seed);
    std::vector<CompositionPlan> Plans = survivingPlans(M);
    ASSERT_FALSE(Plans.empty());
    const CompositionPlan &Plan = Plans[I % Plans.size()];
    DimBinding Binding = Params.inputs().binding(&Plan);

    Executor E1(HardwareModel::byName("cpu"), /*NumThreads=*/1);
    PlanWorkspace WsBase;
    WsBase.configure(Plan, Binding, /*Training=*/true);
    ExecResult Base;
    E1.runTraining(Plan, Params.inputs(), Params.Stats, WsBase, Base);

    for (int Shards : {2, 4}) {
      for (int Threads : {1, 4}) {
        SCOPED_TRACE("shards=" + std::to_string(Shards) +
                     " threads=" + std::to_string(Threads));
        Executor E(HardwareModel::byName("cpu"), Threads);
        PlanWorkspace Ws;
        Ws.configure(Plan, Binding, /*Training=*/true);
        ExecResult R;
        E.runTraining(Plan, Params.inputs(), Params.Stats, Ws, R,
                      ReorderPolicy::None, SparseFormat::Csr,
                      ShardSpec{Shards, ""});
        EXPECT_TRUE(bitwiseEqualDense(R.Output, Base.Output))
            << "sharded training output differs from whole-graph";
        for (const auto &[Name, DW] : Base.WeightGrads) {
          ASSERT_TRUE(R.WeightGrads.count(Name));
          EXPECT_TRUE(bitwiseEqualDense(R.WeightGrads.at(Name), DW))
              << "grad " << Name << " differs by "
              << R.WeightGrads.at(Name).maxAbsDiff(DW);
        }
        if (!Base.FeatureGrad.empty())
          EXPECT_TRUE(bitwiseEqualDense(R.FeatureGrad, Base.FeatureGrad))
              << "feature grad differs by "
              << R.FeatureGrad.maxAbsDiff(Base.FeatureGrad);
      }
    }
  }
}

// Warm-workspace contract under sharding: the second run of a sharded
// workspace performs zero allocations (halo staging reaches its
// high-water marks on run one) and stays bitwise stable.
TEST(Differential, ShardedSteadyStateAllocatesNothing) {
  Instance Inst = makeInstance(8200);
  GnnModel M = makeModel(Inst.Kind);
  LayerParams Params =
      makeLayerParams(M, Inst.G, Inst.KIn, Inst.KOut, Inst.Seed);
  std::vector<CompositionPlan> Plans = survivingPlans(M);
  ASSERT_FALSE(Plans.empty());
  DimBinding Binding = Params.inputs().binding(&Plans[0]);
  Executor Exec(HardwareModel::byName("cpu"), /*NumThreads=*/2);
  PlanWorkspace Ws;
  Ws.configure(Plans[0], Binding, /*Training=*/true);
  ExecResult First, Second;
  ShardSpec Sharding{3, ""};
  Exec.runTraining(Plans[0], Params.inputs(), Params.Stats, Ws, First,
                   ReorderPolicy::None, SparseFormat::Csr, Sharding);
  Ws.resetAllocationCount();
  Exec.runTraining(Plans[0], Params.inputs(), Params.Stats, Ws, Second,
                   ReorderPolicy::None, SparseFormat::Csr, Sharding);
  EXPECT_EQ(Ws.allocationCount(), 0u)
      << "sharded steady state still allocates";
  EXPECT_TRUE(bitwiseEqualDense(First.Output, Second.Output));
}
