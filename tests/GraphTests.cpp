//===- GraphTests.cpp - Tests for graphs, generators, IO, sampling ----------===//

#include "graph/Generators.h"
#include "tensor/DenseMatrix.h"
#include "graph/Graph.h"
#include "graph/MatrixMarket.h"
#include "graph/Sampling.h"
#include "tensor/CooMatrix.h"

#include <gtest/gtest.h>

#include <set>

using namespace granii;

//===----------------------------------------------------------------------===//
// Graph wrapper & statistics
//===----------------------------------------------------------------------===//

TEST(Graph, StatsBasics) {
  Graph G = makeRing(10);
  EXPECT_EQ(G.numNodes(), 10);
  EXPECT_EQ(G.numEdges(), 20); // Stored directed both ways.
  EXPECT_DOUBLE_EQ(G.stats().AvgDegree, 2.0);
  EXPECT_NEAR(G.stats().DegreeCv, 0.0, 1e-12);
}

TEST(Graph, StarStatsAreSkewed) {
  Graph G = makeStar(101);
  EXPECT_DOUBLE_EQ(G.stats().MaxDegree, 100.0);
  EXPECT_GT(G.stats().DegreeCv, 3.0);
  EXPECT_GT(G.stats().DegreeGini, 0.4);
  EXPECT_GT(G.stats().TopRowFraction, 0.45); // Hub holds half the edges.
}

TEST(Graph, SelfLoopsAddNPerNode) {
  Graph G = makeRing(8);
  Graph S = G.withSelfLoops();
  EXPECT_EQ(S.numEdges(), G.numEdges() + 8);
  // Idempotent on already-present self loops.
  Graph S2 = S.withSelfLoops();
  EXPECT_EQ(S2.numEdges(), S.numEdges());
}

TEST(Graph, GeneratedGraphsAreSymmetric) {
  for (const Graph &G :
       {makeErdosRenyi(100, 300, 1), makeRmat(128, 500, 0.5, 0.2, 0.2, 2),
        makeRoadLattice(8, 8, 0.1, 3), makeMycielskian(6),
        makeCommunityGraph(10, 8, 0.5, 40, 4)})
    EXPECT_TRUE(G.isSymmetric()) << G.name();
}

TEST(Graph, CompleteDensity) {
  Graph G = makeComplete(20);
  EXPECT_EQ(G.numEdges(), 20 * 19);
  EXPECT_NEAR(G.stats().Density, 19.0 / 20.0, 1e-12);
}

//===----------------------------------------------------------------------===//
// Generators
//===----------------------------------------------------------------------===//

TEST(Generators, ErdosRenyiDeterministic) {
  Graph A = makeErdosRenyi(200, 1000, 42);
  Graph B = makeErdosRenyi(200, 1000, 42);
  EXPECT_EQ(A.adjacency().colIndices(), B.adjacency().colIndices());
}

TEST(Generators, ErdosRenyiSeedChangesGraph) {
  Graph A = makeErdosRenyi(200, 1000, 42);
  Graph B = makeErdosRenyi(200, 1000, 43);
  EXPECT_NE(A.adjacency().colIndices(), B.adjacency().colIndices());
}

TEST(Generators, RmatIsSkewedVsErdosRenyi) {
  Graph Er = makeErdosRenyi(512, 4000, 7);
  Graph Rm = makeRmat(512, 4000, 0.6, 0.15, 0.15, 7);
  EXPECT_GT(Rm.stats().DegreeCv, Er.stats().DegreeCv * 1.5);
  EXPECT_GT(Rm.stats().DegreeGini, Er.stats().DegreeGini);
}

TEST(Generators, RoadLatticeDegreesBounded) {
  Graph G = makeRoadLattice(10, 12, 0.0, 1);
  EXPECT_EQ(G.numNodes(), 120);
  EXPECT_LE(G.stats().MaxDegree, 4.0);
  // Interior nodes have degree 4: 2*(W-1)*H + 2*W*(H-1) directed edges.
  EXPECT_EQ(G.numEdges(), 2 * (9 * 12 + 10 * 11));
}

TEST(Generators, MycielskianRecurrence) {
  // n(k+1) = 2 n(k) + 1, e(k+1) = 3 e(k) + 2 n(k), starting from K2.
  int64_t N = 2, E = 2;
  for (int K = 3; K <= 8; ++K) {
    E = 3 * E + 2 * N;
    N = 2 * N + 1;
    Graph G = makeMycielskian(K);
    EXPECT_EQ(G.numNodes(), N) << "iteration " << K;
    EXPECT_EQ(G.numEdges(), E) << "iteration " << K;
  }
}

TEST(Generators, MycielskianIsTriangleFreeSmall) {
  // Mycielskians of triangle-free graphs are triangle-free; spot check M4.
  Graph G = makeMycielskian(4);
  const CsrMatrix &A = G.adjacency();
  DenseMatrix D = A.toDense();
  for (int64_t I = 0; I < A.rows(); ++I)
    for (int64_t J = 0; J < A.rows(); ++J)
      for (int64_t K = 0; K < A.rows(); ++K)
        if (D.at(I, J) > 0 && D.at(J, K) > 0) {
          EXPECT_FALSE(I != K && D.at(K, I) > 0 && I < J && J < K)
              << "triangle " << I << "," << J << "," << K;
        }
}

TEST(Generators, MycielskianAverageDegreeGrows) {
  // Node count doubles but edges triple per iteration: the average degree
  // climbs ~1.5x per step (density E/N^2 actually falls).
  EXPECT_GT(makeMycielskian(9).stats().AvgDegree,
            1.8 * makeMycielskian(7).stats().AvgDegree);
}

TEST(Generators, CommunityInterEdgesCrossCommunities) {
  Graph G = makeCommunityGraph(5, 10, 1.0, 0, 9);
  // With no inter edges and p=1, every edge stays within a 10-node block.
  const CsrMatrix &A = G.adjacency();
  const auto &Offsets = A.rowOffsets();
  const auto &Cols = A.colIndices();
  for (int64_t R = 0; R < A.rows(); ++R)
    for (int64_t K = Offsets[static_cast<size_t>(R)];
         K < Offsets[static_cast<size_t>(R) + 1]; ++K)
      EXPECT_EQ(R / 10, Cols[static_cast<size_t>(K)] / 10);
}

TEST(Generators, EvaluationSuiteMatchesPaperOrdering) {
  std::vector<Graph> Suite = makeEvaluationSuite();
  ASSERT_EQ(Suite.size(), 6u);
  EXPECT_EQ(evaluationGraphCodes().size(), 6u);
  // Density ordering: mycielskian stand-in is the densest; the road
  // network is the sparsest (paper Table II).
  const GraphStats &Mc = Suite[2].stats();
  const GraphStats &Bl = Suite[3].stats();
  for (const Graph &G : Suite) {
    EXPECT_GE(Mc.Density, G.stats().Density) << G.name();
    EXPECT_LE(Bl.Density, G.stats().Density) << G.name();
  }
  // Power-law stand-ins (RD, OP) are more skewed than the road network.
  EXPECT_GT(Suite[0].stats().DegreeCv, Bl.DegreeCv);
  EXPECT_GT(Suite[5].stats().DegreeCv, Bl.DegreeCv);
}

TEST(Generators, TrainingSuiteDisjointNamesAndNonEmpty) {
  std::vector<Graph> Suite = makeTrainingSuite();
  EXPECT_GE(Suite.size(), 12u);
  for (const Graph &G : Suite) {
    EXPECT_GT(G.numNodes(), 0);
    EXPECT_GT(G.numEdges(), 0);
  }
}

TEST(Generators, UnknownEvaluationGraphAborts) {
  EXPECT_DEATH(makeEvaluationGraph("nope"), "unknown evaluation graph");
}

//===----------------------------------------------------------------------===//
// Matrix Market IO
//===----------------------------------------------------------------------===//

TEST(MatrixMarket, ParseSymmetricPattern) {
  std::string Text = "%%MatrixMarket matrix coordinate pattern symmetric\n"
                     "% a comment\n"
                     "3 3 2\n"
                     "2 1\n"
                     "3 2\n";
  std::string Error;
  auto G = parseMatrixMarket(Text, "tiny", &Error);
  ASSERT_TRUE(G.has_value()) << Error;
  EXPECT_EQ(G->numNodes(), 3);
  EXPECT_EQ(G->numEdges(), 4); // Symmetric: both directions stored.
  EXPECT_TRUE(G->isSymmetric());
}

TEST(MatrixMarket, ParseGeneralReal) {
  std::string Text = "%%MatrixMarket matrix coordinate real general\n"
                     "2 2 2\n"
                     "1 2 3.5\n"
                     "2 1 1.25\n";
  auto G = parseMatrixMarket(Text, "w");
  ASSERT_TRUE(G.has_value());
  EXPECT_TRUE(G->adjacency().isWeighted());
  EXPECT_FLOAT_EQ(G->adjacency().values()[0], 3.5f);
}

TEST(MatrixMarket, RejectsBadHeader) {
  std::string Error;
  EXPECT_FALSE(parseMatrixMarket("%%MatrixMarket matrix array real general\n",
                                 "x", &Error)
                   .has_value());
  EXPECT_NE(Error.find("coordinate"), std::string::npos);
}

TEST(MatrixMarket, RejectsOutOfBoundsEntry) {
  std::string Text = "%%MatrixMarket matrix coordinate pattern general\n"
                     "2 2 1\n"
                     "3 1\n";
  std::string Error;
  EXPECT_FALSE(parseMatrixMarket(Text, "x", &Error).has_value());
  EXPECT_NE(Error.find("out of bounds"), std::string::npos);
}

TEST(MatrixMarket, RejectsEntryCountMismatch) {
  std::string Text = "%%MatrixMarket matrix coordinate pattern general\n"
                     "2 2 2\n"
                     "1 2\n";
  std::string Error;
  EXPECT_FALSE(parseMatrixMarket(Text, "x", &Error).has_value());
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  Graph G = makeErdosRenyi(40, 120, 77);
  std::string Path = ::testing::TempDir() + "/granii_roundtrip.mtx";
  std::string Error;
  ASSERT_TRUE(writeMatrixMarket(G, Path, &Error)) << Error;
  auto Back = readMatrixMarket(Path, &Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_EQ(Back->numNodes(), G.numNodes());
  EXPECT_EQ(Back->adjacency().colIndices(), G.adjacency().colIndices());
  EXPECT_EQ(Back->adjacency().rowOffsets(), G.adjacency().rowOffsets());
}

TEST(MatrixMarket, ReadMissingFileFails) {
  std::string Error;
  EXPECT_FALSE(readMatrixMarket("/nonexistent/file.mtx", &Error).has_value());
  EXPECT_NE(Error.find("cannot open"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Sampling
//===----------------------------------------------------------------------===//

TEST(Sampling, SeedNodesDistinctAndInRange) {
  Graph G = makeErdosRenyi(100, 400, 5);
  std::vector<int64_t> Seeds = sampleSeedNodes(G, 30, 11);
  std::set<int64_t> Unique(Seeds.begin(), Seeds.end());
  EXPECT_EQ(Unique.size(), 30u);
  for (int64_t S : Seeds) {
    EXPECT_GE(S, 0);
    EXPECT_LT(S, 100);
  }
}

TEST(Sampling, SeedCountClampedToGraph) {
  Graph G = makeRing(5);
  EXPECT_EQ(sampleSeedNodes(G, 50, 1).size(), 5u);
}

TEST(Sampling, InducedSubgraphKeepsInternalEdgesOnly) {
  Graph G = makeRing(6); // edges i -- i+1 mod 6
  SampledGraph S = induceSubgraph(G, {0, 1, 2, 4});
  EXPECT_EQ(S.Sampled.numNodes(), 4);
  // Kept: (0,1), (1,2) in both directions. Node 4 is isolated.
  EXPECT_EQ(S.Sampled.numEdges(), 4);
  EXPECT_TRUE(S.Sampled.isSymmetric());
}

TEST(Sampling, InducedSubgraphMapsIds) {
  Graph G = makeRing(6);
  SampledGraph S = induceSubgraph(G, {4, 0, 2});
  ASSERT_EQ(S.OriginalIds.size(), 3u);
  EXPECT_EQ(S.OriginalIds[0], 0);
  EXPECT_EQ(S.OriginalIds[2], 4);
}

TEST(Sampling, NeighborhoodRespectsReachability) {
  // Two disconnected rings; seeds in the first never reach the second.
  CooMatrix Coo(12, 12);
  for (int64_t I = 0; I < 6; ++I)
    Coo.addSymmetric(I, (I + 1) % 6);
  for (int64_t I = 6; I < 12; ++I)
    Coo.addSymmetric(I, I == 11 ? 6 : I + 1);
  Graph G("two-rings", Coo.toCsr());
  SampledGraph S = sampleNeighborhood(G, 1, 4, 8, /*Seed=*/2);
  for (int64_t Orig : S.OriginalIds) {
    bool FirstRing = S.OriginalIds[0] < 6;
    EXPECT_EQ(Orig < 6, FirstRing);
  }
}

TEST(Sampling, FanOutLimitsGrowth) {
  Graph G = makeStar(200);
  // One hop from the hub with fan-out 5 visits at most 1 + 5 nodes... but
  // seeds are random; use all seeds = hub by sampling 1 seed repeatedly.
  SampledGraph S = sampleNeighborhood(G, 1, 5, 1, 3);
  EXPECT_LE(S.Sampled.numNodes(), 1 + 5);
}

TEST(Sampling, DeterministicGivenSeed) {
  Graph G = makeErdosRenyi(150, 600, 8);
  SampledGraph A = sampleNeighborhood(G, 10, 4, 2, 99);
  SampledGraph B = sampleNeighborhood(G, 10, 4, 2, 99);
  EXPECT_EQ(A.OriginalIds, B.OriginalIds);
}
