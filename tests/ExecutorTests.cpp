//===- ExecutorTests.cpp - Tests for plan execution and autodiff ------------===//

#include "assoc/Enumerate.h"
#include "graph/Generators.h"
#include "granii/Granii.h"
#include "models/Models.h"
#include "runtime/Executor.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace granii;

namespace {

Executor cpuExecutor() { return Executor(HardwareModel::byName("cpu")); }

/// Loss used by the gradient checks: L = sum(Output), matching the
/// backward pass's all-ones seed.
double lossOf(const Executor &Exec, const CompositionPlan &Plan,
              const LayerParams &Params) {
  return Exec.run(Plan, Params.inputs(), Params.Stats).Output.sum();
}

} // namespace

//===----------------------------------------------------------------------===//
// Semantic equivalence of every enumerated plan (the core re-association
// correctness property) across models and graph shapes.
//===----------------------------------------------------------------------===//

struct EquivCase {
  ModelKind Kind;
  const char *GraphName;
};

class PlanEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(PlanEquivalence, AllPlansComputeTheSameOutput) {
  auto [Kind, GraphName] = GetParam();
  Graph G = GraphName == std::string("star") ? makeStar(120)
            : GraphName == std::string("dense")
                ? makeMycielskian(7)
                : makeErdosRenyi(200, 1200, 77);
  GnnModel M = makeModel(Kind);
  LayerParams Params = makeLayerParams(M, G, 12, 20, 5);
  Executor Exec = cpuExecutor();

  auto Plans = enumerateCompositions(M.Root);
  ASSERT_FALSE(Plans.empty());
  DenseMatrix Reference =
      Exec.run(Plans[0], Params.inputs(), Params.Stats).Output;
  for (size_t I = 1; I < Plans.size(); ++I) {
    DenseMatrix Out = Exec.run(Plans[I], Params.inputs(), Params.Stats).Output;
    EXPECT_TRUE(Out.approxEquals(Reference, 2e-3f, 2e-3f))
        << M.Name << " plan " << I << " diverges by "
        << Out.maxAbsDiff(Reference);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndGraphs, PlanEquivalence,
    ::testing::Values(EquivCase{ModelKind::GCN, "er"},
                      EquivCase{ModelKind::GCN, "star"},
                      EquivCase{ModelKind::GCN, "dense"},
                      EquivCase{ModelKind::GIN, "er"},
                      EquivCase{ModelKind::GIN, "dense"},
                      EquivCase{ModelKind::SGC, "er"},
                      EquivCase{ModelKind::SGC, "star"},
                      EquivCase{ModelKind::TAGCN, "er"},
                      EquivCase{ModelKind::GAT, "er"},
                      EquivCase{ModelKind::GAT, "dense"}));

//===----------------------------------------------------------------------===//
// Timing semantics
//===----------------------------------------------------------------------===//

TEST(Executor, MeasuredTimesArePositive) {
  GnnModel M = makeModel(ModelKind::GCN);
  Graph G = makeErdosRenyi(300, 1800, 8);
  LayerParams Params = makeLayerParams(M, G, 16, 16, 1);
  auto Plans = enumerateCompositions(M.Root);
  ExecResult R = cpuExecutor().run(Plans[0], Params.inputs(), Params.Stats);
  EXPECT_GT(R.ForwardSeconds, 0.0);
  EXPECT_EQ(R.BackwardSeconds, 0.0);
  EXPECT_EQ(R.StepSeconds.size(), Plans[0].Steps.size());
}

TEST(Executor, SimulatedTimesAreDeterministic) {
  GnnModel M = makeModel(ModelKind::GCN);
  Graph G = makeErdosRenyi(300, 1800, 8);
  LayerParams Params = makeLayerParams(M, G, 16, 16, 1);
  auto Plans = enumerateCompositions(M.Root);
  Executor Sim(HardwareModel::byName("a100"));
  ExecResult A = Sim.run(Plans[0], Params.inputs(), Params.Stats);
  ExecResult B = Sim.run(Plans[0], Params.inputs(), Params.Stats);
  EXPECT_DOUBLE_EQ(A.ForwardSeconds, B.ForwardSeconds);
  EXPECT_DOUBLE_EQ(A.SetupSeconds, B.SetupSeconds);
}

TEST(Executor, SetupSecondsOnlyFromSetupSteps) {
  GnnModel M = makeModel(ModelKind::GCN);
  Graph G = makeErdosRenyi(300, 1800, 8);
  LayerParams Params = makeLayerParams(M, G, 16, 16, 1);
  Executor Sim(HardwareModel::byName("h100"));
  for (const CompositionPlan &P : enumerateCompositions(M.Root)) {
    ExecResult R = Sim.run(P, Params.inputs(), Params.Stats);
    double Setup = 0.0, Iter = 0.0;
    for (size_t I = 0; I < P.Steps.size(); ++I)
      (P.Steps[I].Setup ? Setup : Iter) += R.StepSeconds[I];
    EXPECT_NEAR(R.SetupSeconds, Setup, 1e-12);
    EXPECT_NEAR(R.ForwardSeconds, Iter, 1e-12);
  }
}

TEST(Executor, TotalSecondsFormula) {
  ExecResult R;
  R.SetupSeconds = 1.0;
  R.ForwardSeconds = 0.5;
  R.BackwardSeconds = 0.25;
  EXPECT_DOUBLE_EQ(R.totalSeconds(10, false), 1.0 + 5.0);
  EXPECT_DOUBLE_EQ(R.totalSeconds(10, true), 1.0 + 7.5);
}

TEST(Executor, TrainingChargesBackwardTime) {
  GnnModel M = makeModel(ModelKind::GAT);
  Graph G = makeErdosRenyi(150, 900, 3);
  LayerParams Params = makeLayerParams(M, G, 8, 12, 2);
  auto Plans = enumerateCompositions(M.Root);
  Executor Sim(HardwareModel::byName("h100"));
  ExecResult R = Sim.runTraining(Plans[0], Params.inputs(), Params.Stats);
  EXPECT_GT(R.BackwardSeconds, 0.0);
}

//===----------------------------------------------------------------------===//
// Gradient checks: analytic backward vs finite differences
//===----------------------------------------------------------------------===//

namespace {

/// Central finite-difference dL/dW[r][c].
double finiteDiff(const Executor &Exec, const CompositionPlan &Plan,
                  LayerParams &Params, DenseMatrix &W, int64_t R, int64_t C,
                  float Eps = 1e-2f) {
  float Saved = W.at(R, C);
  W.at(R, C) = Saved + Eps;
  double Plus = lossOf(Exec, Plan, Params);
  W.at(R, C) = Saved - Eps;
  double Minus = lossOf(Exec, Plan, Params);
  W.at(R, C) = Saved;
  return (Plus - Minus) / (2.0 * Eps);
}

} // namespace

TEST(Autodiff, BackwardRunsOnEveryPlanOfEveryModel) {
  Graph G = makeErdosRenyi(80, 400, 4);
  Executor Exec = cpuExecutor();
  for (ModelKind Kind : allModels()) {
    GnnModel M = makeModel(Kind);
    LayerParams Params = makeLayerParams(M, G, 6, 10, 7);
    for (const CompositionPlan &P : enumerateCompositions(M.Root)) {
      ExecResult R = Exec.runTraining(P, Params.inputs(), Params.Stats);
      EXPECT_GT(R.BackwardSeconds, 0.0) << M.Name;
      EXPECT_FALSE(std::isnan(R.Output.sum())) << M.Name;
    }
  }
}

TEST(Autodiff, GcnBackwardCostExceedsNothingButIsComparable) {
  // Backward does roughly 2x the forward work for GEMM-dominated plans.
  GnnModel M = makeModel(ModelKind::GCN);
  Graph G = makeErdosRenyi(200, 1200, 4);
  LayerParams Params = makeLayerParams(M, G, 32, 32, 7);
  Executor Sim(HardwareModel::byName("h100"));
  auto Plans = enumerateCompositions(M.Root);
  ExecResult R = Sim.runTraining(Plans[0], Params.inputs(), Params.Stats);
  EXPECT_GT(R.BackwardSeconds, 0.3 * R.ForwardSeconds);
  EXPECT_LT(R.BackwardSeconds, 10.0 * R.ForwardSeconds);
}

// The finite-difference checks use double-precision losses over float
// tensors; tolerances are set accordingly (relative 2% + small absolute).
struct GradCase {
  ModelKind Kind;
};

class GradientCheck : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradientCheck, WeightGradientsMatchFiniteDifferences) {
  ModelKind Kind = GetParam().Kind;
  GnnModel M = makeModel(Kind);
  Graph G = makeErdosRenyi(40, 200, 12);
  LayerParams Params = makeLayerParams(M, G, 5, 7, 21);
  Executor Exec = cpuExecutor();
  auto Plans = enumerateCompositions(M.Root);

  // Compare analytic dW from the tape against central differences, on up
  // to two structurally different plans.
  for (size_t PI = 0; PI < Plans.size() && PI < 2; ++PI) {
    const CompositionPlan &Plan = Plans[PI];
    ExecResult R =
        Exec.runTraining(Plan, Params.inputs(), Params.Stats);
    std::string WName = Params.Weights.count("W") ? "W" : "W0";
    ASSERT_TRUE(R.WeightGrads.count(WName)) << M.Name << " plan " << PI;
    const DenseMatrix &DW = R.WeightGrads.at(WName);
    DenseMatrix &W = Params.Weights.at(WName);
    ASSERT_EQ(DW.rows(), W.rows());
    ASSERT_EQ(DW.cols(), W.cols());
    for (auto [Row, Col] :
         {std::pair<int64_t, int64_t>{0, 0}, {2, 3}, {4, 6}}) {
      double FD = finiteDiff(Exec, Plan, Params, W, Row, Col);
      double Analytic = DW.at(Row, Col);
      EXPECT_NEAR(Analytic, FD, std::abs(FD) * 0.05 + 0.2)
          << M.Name << " plan " << PI << " at (" << Row << "," << Col << ")";
    }
  }
}

TEST(Autodiff, GradientsAgreeAcrossPlans) {
  // Every re-association computes the same function, so gradients must
  // match plan-to-plan as well.
  for (ModelKind Kind : {ModelKind::GCN, ModelKind::GAT, ModelKind::GIN}) {
    GnnModel M = makeModel(Kind);
    Graph G = makeErdosRenyi(60, 300, 15);
    LayerParams Params = makeLayerParams(M, G, 6, 9, 33);
    Executor Exec = cpuExecutor();
    auto Plans = enumerateCompositions(M.Root);
    ExecResult Ref =
        Exec.runTraining(Plans[0], Params.inputs(), Params.Stats);
    for (size_t I = 1; I < Plans.size(); ++I) {
      ExecResult R =
          Exec.runTraining(Plans[I], Params.inputs(), Params.Stats);
      for (const auto &[Name, DW] : Ref.WeightGrads) {
        ASSERT_TRUE(R.WeightGrads.count(Name)) << M.Name;
        EXPECT_TRUE(R.WeightGrads.at(Name).approxEquals(DW, 5e-3f, 5e-3f))
            << M.Name << " plan " << I << " grad " << Name;
      }
      if (!Ref.FeatureGrad.empty()) {
        EXPECT_TRUE(R.FeatureGrad.approxEquals(Ref.FeatureGrad, 5e-3f, 5e-3f))
            << M.Name << " plan " << I;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Models, GradientCheck,
                         ::testing::Values(GradCase{ModelKind::GCN},
                                           GradCase{ModelKind::GIN},
                                           GradCase{ModelKind::SGC},
                                           GradCase{ModelKind::GAT}));

TEST(Executor, MissingWeightBindingAborts) {
  GnnModel M = makeModel(ModelKind::TAGCN);
  Graph G = makeErdosRenyi(50, 250, 2);
  LayerParams Params = makeLayerParams(M, G, 4, 4, 1);
  Params.Weights.erase("W2");
  auto Plans = enumerateCompositions(M.Root);
  Executor Exec = cpuExecutor();
  EXPECT_DEATH(
      { (void)Exec.run(Plans[0], Params.inputs(), Params.Stats); },
      "no weight bound");
}

TEST(Executor, BindingReportsGraphAndEmbeddingSizes) {
  GnnModel M = makeModel(ModelKind::GCN);
  Graph G = makeErdosRenyi(64, 256, 2);
  LayerParams Params = makeLayerParams(M, G, 12, 20, 1);
  DimBinding B = Params.inputs().binding();
  EXPECT_EQ(B.N, 64);
  EXPECT_EQ(B.KIn, 12);
  EXPECT_EQ(B.KOut, 20);
  EXPECT_GT(B.E, 256); // Self loops added.
}

// Regression: with several weights of different widths, K_out must come
// from the weight whose symbolic shape carries KOut, not from whichever
// weight sorts first in the (name-ordered) Weights map. Here the
// alphabetically-first weight "Wa" is a 12x16 input projection and the
// output-producing weight "Wb" is 16x8: the old Weights.begin() logic
// reported K_out = 16 and flipped the K_in >= K_out scenario (12 >= 16 is
// false, but 12 >= 8 is true).
TEST(Executor, BindingDerivesKOutFromPlanOutputWeight) {
  CompositionPlan Plan;
  Plan.Values.resize(5);
  Plan.Values[0].Kind = PlanValueKind::Dense; // H: n x kIn
  Plan.Values[0].Shape = {SymDim::n(), SymDim::kIn()};
  Plan.Values[0].DebugName = "H";
  Plan.Values[0].InputRole = LeafRole::Features;
  Plan.Values[1].Kind = PlanValueKind::Dense; // Wa: kIn x 16 (hidden)
  Plan.Values[1].Shape = {SymDim::kIn(), SymDim::constant(16)};
  Plan.Values[1].DebugName = "Wa";
  Plan.Values[1].InputRole = LeafRole::Weight;
  Plan.Values[2].Kind = PlanValueKind::Dense; // Wb: 16 x kOut (output)
  Plan.Values[2].Shape = {SymDim::constant(16), SymDim::kOut()};
  Plan.Values[2].DebugName = "Wb";
  Plan.Values[2].InputRole = LeafRole::Weight;
  Plan.Values[3].Kind = PlanValueKind::Dense; // H * Wa
  Plan.Values[3].Shape = {SymDim::n(), SymDim::constant(16)};
  Plan.Values[4].Kind = PlanValueKind::Dense; // (H * Wa) * Wb
  Plan.Values[4].Shape = {SymDim::n(), SymDim::kOut()};
  Plan.Steps.push_back({StepOp::Gemm, {0, 1}, 3, 0.0, false});
  Plan.Steps.push_back({StepOp::Gemm, {3, 2}, 4, 0.0, false});
  Plan.OutputValue = 4;

  Graph G = makeErdosRenyi(64, 256, 3);
  DenseMatrix H(64, 12), Wa(12, 16), Wb(16, 8);
  LayerInputs Inputs;
  Inputs.Adjacency = &G.adjacency();
  Inputs.Features = &H;
  Inputs.Weights = {{"Wa", &Wa}, {"Wb", &Wb}};

  DimBinding B = Inputs.binding(&Plan);
  EXPECT_EQ(B.KIn, 12);
  EXPECT_EQ(B.KOut, 8); // Weights.begin() ("Wa") would report 16.

  // The plan-less overload keeps its first-weight behavior for
  // single-weight layers; this is exactly the case it mis-binds.
  EXPECT_EQ(Inputs.binding().KOut, 16);
}
