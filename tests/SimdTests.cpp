//===- SimdTests.cpp - Runtime ISA dispatch and SIMD kernel tests -----------===//
//
// Covers the kernel dispatch layer (src/kernels/Dispatch.h): level parsing
// and naming, CPUID-bounded level enumeration, the setIsaLevel override,
// table completeness, the 64-byte alignment contract of the tensor storage,
// and cross-ISA agreement of every dispatched kernel family on fixtures
// whose shapes exercise both the vector bodies and the scalar tails.
//
//===----------------------------------------------------------------------===//

#include "kernels/Dispatch.h"
#include "kernels/Kernels.h"
#include "support/Aligned.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "tensor/CooMatrix.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace granii;
using kernels::IsaLevel;

namespace {

/// Restores the entry ISA level even when an ASSERT unwinds the test body.
struct IsaLevelGuard {
  IsaLevel Entry = kernels::activeIsaLevel();
  ~IsaLevelGuard() { kernels::setIsaLevel(Entry); }
};

DenseMatrix randomDense(int64_t Rows, int64_t Cols, uint64_t Seed) {
  Rng R(Seed);
  DenseMatrix M(Rows, Cols);
  M.fillRandom(R, -1.0f, 1.0f);
  return M;
}

CsrMatrix randomSparse(int64_t Rows, int64_t Cols, int64_t Entries,
                       uint64_t Seed, bool Weighted) {
  Rng R(Seed);
  CooMatrix Coo(Rows, Cols);
  for (int64_t I = 0; I < Entries; ++I)
    Coo.add(static_cast<int64_t>(R.nextBelow(static_cast<uint64_t>(Rows))),
            static_cast<int64_t>(R.nextBelow(static_cast<uint64_t>(Cols))),
            R.nextFloat(0.1f, 1.0f));
  return Coo.toCsr(!Weighted);
}

void expectApproxEqual(const DenseMatrix &Got, const DenseMatrix &Want,
                       float Tol, const std::string &What) {
  EXPECT_TRUE(Got.approxEquals(Want, Tol, Tol))
      << What << " differs from the scalar level by "
      << Got.maxAbsDiff(Want);
}

void expectBitwiseEqual(const DenseMatrix &Got, const DenseMatrix &Want,
                        const std::string &What) {
  EXPECT_EQ(Got.maxAbsDiff(Want), 0.0f)
      << What << " is not bitwise identical to the scalar level";
}

} // namespace

//===----------------------------------------------------------------------===//
// Level parsing, naming, enumeration
//===----------------------------------------------------------------------===//

TEST(Dispatch, IsaNamesRoundTrip) {
  EXPECT_EQ(kernels::parseIsaLevel("scalar"), IsaLevel::Scalar);
  EXPECT_EQ(kernels::parseIsaLevel("avx2"), IsaLevel::Avx2);
  EXPECT_EQ(kernels::parseIsaLevel("avx512"), IsaLevel::Avx512);
  for (IsaLevel Level :
       {IsaLevel::Scalar, IsaLevel::Avx2, IsaLevel::Avx512})
    EXPECT_EQ(kernels::parseIsaLevel(kernels::isaLevelName(Level)), Level);
}

TEST(Dispatch, IsaParsingRejectsGarbage) {
  EXPECT_FALSE(kernels::parseIsaLevel(""));
  EXPECT_FALSE(kernels::parseIsaLevel("AVX2"));
  EXPECT_FALSE(kernels::parseIsaLevel("avx-512"));
  EXPECT_FALSE(kernels::parseIsaLevel("sse4"));
  EXPECT_FALSE(kernels::parseIsaLevel(" scalar"));
}

TEST(Dispatch, SupportedLevelsStartWithScalarAndAscend) {
  std::vector<IsaLevel> Levels = kernels::supportedIsaLevels();
  ASSERT_FALSE(Levels.empty());
  EXPECT_EQ(Levels.front(), IsaLevel::Scalar);
  for (size_t I = 1; I < Levels.size(); ++I)
    EXPECT_LT(Levels[I - 1], Levels[I]);
  EXPECT_EQ(Levels.back(), kernels::detectedIsaLevel());
}

TEST(Dispatch, SetIsaLevelSwitchesActiveTable) {
  IsaLevelGuard Guard;
  for (IsaLevel Level : kernels::supportedIsaLevels()) {
    ASSERT_TRUE(kernels::setIsaLevel(Level));
    EXPECT_EQ(kernels::activeIsaLevel(), Level);
    EXPECT_EQ(kernels::simdOps().Level, Level);
    EXPECT_STREQ(kernels::simdOps().Name, kernels::isaLevelName(Level));
  }
}

TEST(Dispatch, UnavailableLevelsAreRejected) {
  IsaLevelGuard Guard;
  IsaLevel Detected = kernels::detectedIsaLevel();
  for (IsaLevel Level :
       {IsaLevel::Scalar, IsaLevel::Avx2, IsaLevel::Avx512}) {
    if (Level <= Detected)
      continue;
    EXPECT_EQ(kernels::simdOpsFor(Level), nullptr);
    // A rejected request must leave the active level untouched.
    EXPECT_FALSE(kernels::setIsaLevel(Level));
    EXPECT_EQ(kernels::activeIsaLevel(), Guard.Entry);
  }
}

TEST(Dispatch, TablesAreFullyPopulated) {
  for (IsaLevel Level : kernels::supportedIsaLevels()) {
    const kernels::SimdOps *Ops = kernels::simdOpsFor(Level);
    ASSERT_NE(Ops, nullptr) << kernels::isaLevelName(Level);
    EXPECT_EQ(Ops->Level, Level);
    EXPECT_NE(Ops->GemmRowRange, nullptr);
    EXPECT_NE(Ops->GemmTLhsRowRange, nullptr);
    EXPECT_NE(Ops->GemmTRhsRowRange, nullptr);
    EXPECT_NE(Ops->SpmmRowRange, nullptr);
    EXPECT_NE(Ops->SddmmDotRowRange, nullptr);
    EXPECT_NE(Ops->ScaleRange, nullptr);
    EXPECT_NE(Ops->MulRange, nullptr);
    EXPECT_NE(Ops->AddRange, nullptr);
    EXPECT_NE(Ops->AxpyRange, nullptr);
    EXPECT_NE(Ops->ReluRange, nullptr);
    EXPECT_GE(Ops->ColumnQuantum, 1);
    EXPECT_GE(Ops->DenseThroughputScale, 1.0);
    EXPECT_GE(Ops->SparseThroughputScale, 1.0);
  }
  // The scalar table reproduces the pre-SIMD kernels: no tiling quantum,
  // unit throughput (it is the calibration baseline).
  const kernels::SimdOps *Scalar = kernels::simdOpsFor(IsaLevel::Scalar);
  ASSERT_NE(Scalar, nullptr);
  EXPECT_EQ(Scalar->ColumnQuantum, 1);
  EXPECT_EQ(Scalar->DenseThroughputScale, 1.0);
  EXPECT_EQ(Scalar->SparseThroughputScale, 1.0);
}

TEST(Dispatch, SimdLevelsShareOneColumnQuantum) {
  // HardwareModel::spmmColumnTile rounds to the active ColumnQuantum; the
  // tiled-SDDMM bitwise contract relies on every SIMD level sharing one
  // quantum so a tile width legal for one level is legal for all.
  for (IsaLevel Level : kernels::supportedIsaLevels()) {
    if (Level == IsaLevel::Scalar)
      continue;
    EXPECT_EQ(kernels::simdOpsFor(Level)->ColumnQuantum, 8)
        << kernels::isaLevelName(Level);
  }
}

//===----------------------------------------------------------------------===//
// Alignment contract of the tensor storage
//===----------------------------------------------------------------------===//

TEST(Alignment, DenseMatrixStorageIsCacheLineAligned) {
  for (auto [Rows, Cols] : {std::pair<int64_t, int64_t>{1, 1},
                            {17, 9},
                            {64, 64},
                            {3, 1000}}) {
    DenseMatrix M(Rows, Cols);
    EXPECT_TRUE(isKernelAligned(M.data()));
  }
  // Arena-style reshapes reuse the buffer and must keep the alignment.
  DenseMatrix M(8, 8);
  const float *Before = M.data();
  M.resize(4, 16);
  EXPECT_EQ(M.data(), Before);
  EXPECT_TRUE(isKernelAligned(M.data()));
}

TEST(Alignment, CsrMatrixStorageIsCacheLineAligned) {
  CsrMatrix A = randomSparse(50, 50, 300, 99, /*Weighted=*/true);
  EXPECT_TRUE(isKernelAligned(A.rowOffsets().data()));
  EXPECT_TRUE(isKernelAligned(A.colIndices().data()));
  EXPECT_TRUE(isKernelAligned(A.values().data()));
}

TEST(Alignment, AlignedVectorSurvivesGrowth) {
  AlignedVector<float> V;
  for (int I = 0; I < 1000; ++I) {
    V.push_back(static_cast<float>(I));
    ASSERT_TRUE(isKernelAligned(V.data()));
  }
}

//===----------------------------------------------------------------------===//
// Cross-ISA kernel agreement
//===----------------------------------------------------------------------===//
//
// Shapes deliberately avoid vector-width multiples (K = 45, N = 29, ...)
// so every level runs both its vector body and its scalar tail.

TEST(CrossIsa, GemmFamilyAgreesWithScalarLevel) {
  IsaLevelGuard Guard;
  DenseMatrix A = randomDense(37, 45, 11);
  DenseMatrix B = randomDense(45, 29, 12);
  DenseMatrix At = randomDense(45, 37, 13); // lhs of the A^T * B form
  DenseMatrix Bt = randomDense(29, 45, 14); // rhs of the A * B^T form

  ASSERT_TRUE(kernels::setIsaLevel(IsaLevel::Scalar));
  DenseMatrix RefGemm = kernels::gemm(A, B);
  DenseMatrix RefTLhs = kernels::gemmTransposedLhs(At, B);
  DenseMatrix RefTRhs = kernels::gemmTransposedRhs(A, Bt);

  for (IsaLevel Level : kernels::supportedIsaLevels()) {
    SCOPED_TRACE(kernels::isaLevelName(Level));
    ASSERT_TRUE(kernels::setIsaLevel(Level));
    expectApproxEqual(kernels::gemm(A, B), RefGemm, 1e-5f, "gemm");
    expectApproxEqual(kernels::gemmTransposedLhs(At, B), RefTLhs, 1e-5f,
                      "gemmTransposedLhs");
    expectApproxEqual(kernels::gemmTransposedRhs(A, Bt), RefTRhs, 1e-5f,
                      "gemmTransposedRhs");
  }
}

TEST(CrossIsa, SpmmAgreesWithScalarLevel) {
  IsaLevelGuard Guard;
  CsrMatrix Weighted = randomSparse(60, 60, 320, 21, /*Weighted=*/true);
  CsrMatrix Unweighted = randomSparse(60, 60, 320, 22, /*Weighted=*/false);
  DenseMatrix B = randomDense(60, 33, 23);

  ASSERT_TRUE(kernels::setIsaLevel(IsaLevel::Scalar));
  DenseMatrix RefW = kernels::spmm(Weighted, B, Semiring::plusTimes());
  DenseMatrix RefU = kernels::spmm(Unweighted, B, Semiring::plusCopy());

  for (IsaLevel Level : kernels::supportedIsaLevels()) {
    SCOPED_TRACE(kernels::isaLevelName(Level));
    ASSERT_TRUE(kernels::setIsaLevel(Level));
    expectApproxEqual(kernels::spmm(Weighted, B, Semiring::plusTimes()),
                      RefW, 1e-5f, "weighted spmm");
    expectApproxEqual(kernels::spmm(Unweighted, B, Semiring::plusCopy()),
                      RefU, 1e-5f, "unweighted spmm");
  }
}

TEST(CrossIsa, SddmmAgreesWithScalarLevel) {
  IsaLevelGuard Guard;
  CsrMatrix Mask = randomSparse(40, 40, 260, 31, /*Weighted=*/false);
  DenseMatrix U = randomDense(40, 21, 32);
  DenseMatrix V = randomDense(40, 21, 33);

  ASSERT_TRUE(kernels::setIsaLevel(IsaLevel::Scalar));
  std::vector<float> Ref = kernels::sddmm(Mask, U, V);

  for (IsaLevel Level : kernels::supportedIsaLevels()) {
    SCOPED_TRACE(kernels::isaLevelName(Level));
    ASSERT_TRUE(kernels::setIsaLevel(Level));
    std::vector<float> Got = kernels::sddmm(Mask, U, V);
    ASSERT_EQ(Got.size(), Ref.size());
    for (size_t I = 0; I < Ref.size(); ++I)
      EXPECT_NEAR(Got[I], Ref[I], 1e-5f) << "edge " << I;
  }
}

TEST(CrossIsa, ElementwiseOpsAreBitwiseAcrossLevels) {
  // Scale, add, multiply, and ReLU apply the same single IEEE operation per
  // element at every level; vectorization cannot change a bit.
  IsaLevelGuard Guard;
  DenseMatrix A = randomDense(23, 37, 41);
  DenseMatrix B = randomDense(23, 37, 42);
  std::vector<float> D(23);
  Rng R(43);
  for (float &X : D)
    X = R.nextFloat(-1.0f, 1.0f);

  ASSERT_TRUE(kernels::setIsaLevel(IsaLevel::Scalar));
  DenseMatrix RefRelu = kernels::relu(A);
  DenseMatrix RefAdd = kernels::addMatrices(A, B);
  DenseMatrix RefScale = kernels::scaleMatrix(A, 0.37f);
  DenseMatrix RefRowMul = kernels::rowBroadcastMul(D, A);

  for (IsaLevel Level : kernels::supportedIsaLevels()) {
    SCOPED_TRACE(kernels::isaLevelName(Level));
    ASSERT_TRUE(kernels::setIsaLevel(Level));
    expectBitwiseEqual(kernels::relu(A), RefRelu, "relu");
    expectBitwiseEqual(kernels::addMatrices(A, B), RefAdd, "addMatrices");
    expectBitwiseEqual(kernels::scaleMatrix(A, 0.37f), RefScale,
                       "scaleMatrix");
    expectBitwiseEqual(kernels::rowBroadcastMul(D, A), RefRowMul,
                       "rowBroadcastMul");
  }
}

TEST(CrossIsa, AxpyAgreesWithScalarLevel) {
  // axpy uses fused multiply-add on the SIMD levels, so only approximate
  // agreement with the scalar level's mul-then-add holds.
  IsaLevelGuard Guard;
  DenseMatrix A = randomDense(19, 31, 51);
  DenseMatrix Base = randomDense(19, 31, 52);

  ASSERT_TRUE(kernels::setIsaLevel(IsaLevel::Scalar));
  DenseMatrix Ref = Base;
  kernels::axpyInto(0.73f, A, Ref);

  for (IsaLevel Level : kernels::supportedIsaLevels()) {
    SCOPED_TRACE(kernels::isaLevelName(Level));
    ASSERT_TRUE(kernels::setIsaLevel(Level));
    DenseMatrix Got = Base;
    kernels::axpyInto(0.73f, A, Got);
    expectApproxEqual(Got, Ref, 1e-5f, "axpy");
  }
}

TEST(CrossIsa, WithinLevelResultsAreThreadCountInvariant) {
  // The bitwise 1-vs-N-thread contract, checked per level directly at the
  // kernel layer (the differential suite covers the full pipeline).
  IsaLevelGuard Guard;
  CsrMatrix A = randomSparse(80, 80, 500, 61, /*Weighted=*/true);
  DenseMatrix H = randomDense(80, 29, 62);
  int EntryThreads = ThreadPool::get().numThreads();
  for (IsaLevel Level : kernels::supportedIsaLevels()) {
    SCOPED_TRACE(kernels::isaLevelName(Level));
    ASSERT_TRUE(kernels::setIsaLevel(Level));
    ThreadPool::get().setNumThreads(1);
    DenseMatrix One = kernels::spmm(A, H, Semiring::plusTimes());
    ThreadPool::get().setNumThreads(4);
    DenseMatrix Four = kernels::spmm(A, H, Semiring::plusTimes());
    EXPECT_EQ(Four.maxAbsDiff(One), 0.0f)
        << "thread count changed spmm output";
  }
  ThreadPool::get().setNumThreads(EntryThreads);
}
