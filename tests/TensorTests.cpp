//===- TensorTests.cpp - Tests for dense/sparse matrix types ----------------===//

#include "support/Rng.h"
#include "tensor/CooMatrix.h"
#include "tensor/CsrMatrix.h"
#include "tensor/DenseMatrix.h"
#include "tensor/Semiring.h"

#include <gtest/gtest.h>

using namespace granii;

TEST(DenseMatrix, ZeroInitialized) {
  DenseMatrix M(3, 4);
  for (int64_t R = 0; R < 3; ++R)
    for (int64_t C = 0; C < 4; ++C)
      EXPECT_EQ(M.at(R, C), 0.0f);
}

TEST(DenseMatrix, FillAndSum) {
  DenseMatrix M(2, 5);
  M.fill(2.0f);
  EXPECT_DOUBLE_EQ(M.sum(), 20.0);
}

TEST(DenseMatrix, TransposeRoundTrip) {
  Rng R(3);
  DenseMatrix M(4, 7);
  M.fillRandom(R);
  DenseMatrix Back = M.transposed().transposed();
  EXPECT_TRUE(Back.approxEquals(M, 0.0f, 0.0f));
}

TEST(DenseMatrix, TransposeElementMapping) {
  DenseMatrix M(2, 3);
  M.at(0, 2) = 5.0f;
  DenseMatrix T = M.transposed();
  EXPECT_EQ(T.rows(), 3);
  EXPECT_EQ(T.cols(), 2);
  EXPECT_EQ(T.at(2, 0), 5.0f);
}

TEST(DenseMatrix, ApproxEqualsShapeMismatch) {
  EXPECT_FALSE(DenseMatrix(2, 2).approxEquals(DenseMatrix(2, 3)));
}

TEST(DenseMatrix, MaxAbsDiff) {
  DenseMatrix A(2, 2), B(2, 2);
  B.at(1, 1) = 3.0f;
  EXPECT_FLOAT_EQ(A.maxAbsDiff(B), 3.0f);
}

TEST(DenseMatrix, FrobeniusNorm) {
  DenseMatrix M(1, 2);
  M.at(0, 0) = 3.0f;
  M.at(0, 1) = 4.0f;
  EXPECT_NEAR(M.frobeniusNorm(), 5.0, 1e-9);
}

TEST(CooMatrix, MergesDuplicates) {
  CooMatrix Coo(3, 3);
  Coo.add(0, 1, 1.0f);
  Coo.add(0, 1, 2.0f);
  Coo.add(2, 2, 1.0f);
  CsrMatrix Csr = Coo.toCsr(/*Unweighted=*/false);
  EXPECT_EQ(Csr.nnz(), 2);
  EXPECT_FLOAT_EQ(Csr.values()[0], 3.0f);
}

TEST(CooMatrix, SymmetricAddsBothDirections) {
  CooMatrix Coo(4, 4);
  Coo.addSymmetric(1, 2);
  CsrMatrix Csr = Coo.toCsr();
  EXPECT_EQ(Csr.nnz(), 2);
  EXPECT_EQ(Csr.rowNnz(1), 1);
  EXPECT_EQ(Csr.rowNnz(2), 1);
}

TEST(CooMatrix, SymmetricDiagonalAddedOnce) {
  CooMatrix Coo(3, 3);
  Coo.addSymmetric(1, 1);
  EXPECT_EQ(Coo.toCsr().nnz(), 1);
}

TEST(CooMatrix, SortedColumnsWithinRows) {
  CooMatrix Coo(2, 5);
  Coo.add(0, 4);
  Coo.add(0, 1);
  Coo.add(0, 3);
  CsrMatrix Csr = Coo.toCsr();
  Csr.verify(); // Verifies strictly increasing columns.
  EXPECT_EQ(Csr.colIndices()[0], 1);
  EXPECT_EQ(Csr.colIndices()[2], 4);
}

TEST(CsrMatrix, UnweightedValueIsOne) {
  CooMatrix Coo(2, 2);
  Coo.add(0, 1);
  CsrMatrix Csr = Coo.toCsr();
  EXPECT_FALSE(Csr.isWeighted());
  EXPECT_FLOAT_EQ(Csr.valueAt(0), 1.0f);
}

TEST(CsrMatrix, SetValuesMakesWeighted) {
  CooMatrix Coo(2, 2);
  Coo.add(0, 1);
  Coo.add(1, 0);
  CsrMatrix Csr = Coo.toCsr();
  Csr.setValues({2.0f, 3.0f});
  EXPECT_TRUE(Csr.isWeighted());
  EXPECT_FLOAT_EQ(Csr.valueAt(1), 3.0f);
  Csr.clearValues();
  EXPECT_FALSE(Csr.isWeighted());
}

TEST(CsrMatrix, ToDenseMatchesEntries) {
  CooMatrix Coo(2, 3);
  Coo.add(0, 2, 4.0f);
  Coo.add(1, 0, -1.0f);
  DenseMatrix D = Coo.toCsr(/*Unweighted=*/false).toDense();
  EXPECT_FLOAT_EQ(D.at(0, 2), 4.0f);
  EXPECT_FLOAT_EQ(D.at(1, 0), -1.0f);
  EXPECT_FLOAT_EQ(D.at(0, 0), 0.0f);
}

TEST(CsrMatrix, TransposeMatchesDenseTranspose) {
  Rng R(17);
  CooMatrix Coo(6, 6);
  for (int I = 0; I < 12; ++I)
    Coo.add(static_cast<int64_t>(R.nextBelow(6)),
            static_cast<int64_t>(R.nextBelow(6)), R.nextFloat(0.f, 1.f));
  CsrMatrix Csr = Coo.toCsr(/*Unweighted=*/false);
  DenseMatrix Expected = Csr.toDense().transposed();
  DenseMatrix Actual = Csr.transposed().toDense();
  EXPECT_TRUE(Actual.approxEquals(Expected, 1e-6f, 1e-6f));
}

TEST(CsrMatrix, TransposePreservesNnzAndUnweightedness) {
  CooMatrix Coo(3, 5);
  Coo.add(0, 4);
  Coo.add(2, 1);
  CsrMatrix T = Coo.toCsr().transposed();
  EXPECT_EQ(T.rows(), 5);
  EXPECT_EQ(T.cols(), 3);
  EXPECT_EQ(T.nnz(), 2);
  EXPECT_FALSE(T.isWeighted());
}

TEST(CsrMatrix, EmptyMatrixIsValid) {
  CsrMatrix Empty;
  EXPECT_EQ(Empty.rows(), 0);
  EXPECT_EQ(Empty.nnz(), 0);
  Empty.verify();
}

TEST(Semiring, PlusTimesIdentity) {
  Semiring S = Semiring::plusTimes();
  EXPECT_EQ(S.reduceIdentity(), 0.0f);
  EXPECT_EQ(S.combine(2.0f, 3.0f), 6.0f);
  EXPECT_EQ(S.reduce(1.0f, 5.0f), 6.0f);
}

TEST(Semiring, CopyRhsIgnoresEdgeValue) {
  Semiring S = Semiring::plusCopy();
  EXPECT_EQ(S.combine(99.0f, 3.0f), 3.0f);
}

TEST(Semiring, MaxReduceIdentityIsNegInf) {
  Semiring S = Semiring::maxCopy();
  EXPECT_LT(S.reduceIdentity(), -1e30f);
  EXPECT_EQ(S.reduce(1.0f, 5.0f), 5.0f);
  EXPECT_EQ(S.reduce(7.0f, 5.0f), 7.0f);
}

TEST(Semiring, Names) {
  EXPECT_EQ(semiringName(Semiring::plusTimes()), "sum.mul");
  EXPECT_EQ(semiringName(Semiring::maxCopy()), "max.copy");
  EXPECT_EQ(semiringName(Semiring::meanCopy()), "mean.copy");
}
