//===- SupportTests.cpp - Tests for the support library ---------------------===//

#include "support/Rng.h"
#include "support/Stats.h"
#include "support/Str.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

using namespace granii;

TEST(Rng, DeterministicStream) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng A(7);
  uint64_t First = A.next();
  A.next();
  A.reseed(7);
  EXPECT_EQ(A.next(), First);
}

TEST(Rng, NextBelowInRange) {
  Rng R(5);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng R(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(R.nextBelow(7));
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng R(11);
  for (int I = 0; I < 1000; ++I) {
    double X = R.nextDouble();
    EXPECT_GE(X, 0.0);
    EXPECT_LT(X, 1.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng R(13);
  double Sum = 0.0, SumSq = 0.0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    double X = R.nextGaussian();
    Sum += X;
    SumSq += X * X;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.05);
  EXPECT_NEAR(SumSq / N, 1.0, 0.05);
}

TEST(Stats, MeanAndStddev) {
  std::vector<double> V = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(meanOf(V), 2.5);
  EXPECT_NEAR(stddevOf(V), std::sqrt(1.25), 1e-12);
}

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_EQ(meanOf({}), 0.0); }

TEST(Stats, GeomeanKnownValue) {
  EXPECT_NEAR(geomeanOf({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomeanOf({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, GeomeanOfEmptyIsOne) { EXPECT_EQ(geomeanOf({}), 1.0); }

TEST(Stats, QuantileInterpolates) {
  std::vector<double> V = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantileOf(V, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantileOf(V, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(medianOf(V), 25.0);
}

TEST(Stats, GiniOfEqualValuesIsZero) {
  EXPECT_NEAR(giniOf({3, 3, 3, 3}), 0.0, 1e-12);
}

TEST(Stats, GiniOfConcentratedIsHigh) {
  double G = giniOf({0, 0, 0, 0, 0, 0, 0, 0, 0, 100});
  EXPECT_GT(G, 0.85);
}

TEST(Stats, GiniOrdering) {
  EXPECT_LT(giniOf({5, 5, 5, 5}), giniOf({1, 2, 3, 14}));
}

TEST(Str, SplitKeepsEmptyFields) {
  auto Parts = splitString("a,,b", ',');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[1], "");
}

TEST(Str, SplitSingleField) {
  auto Parts = splitString("abc", ',');
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0], "abc");
}

TEST(Str, Trim) {
  EXPECT_EQ(trimString("  hi\t\n"), "hi");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString("   "), "");
}

TEST(Str, StartsWith) {
  EXPECT_TRUE(startsWith("model GCN", "model"));
  EXPECT_FALSE(startsWith("mod", "model"));
}

TEST(Str, Join) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(joinStrings({}, ","), "");
}

TEST(Str, FormatDouble) { EXPECT_EQ(formatDouble(1.23456, 2), "1.23"); }

TEST(Str, ParseDoubleDecimal) {
  double V = 0.0;
  EXPECT_TRUE(parseDouble("1.5", V));
  EXPECT_EQ(V, 1.5);
  EXPECT_TRUE(parseDouble("-2.25e2", V));
  EXPECT_EQ(V, -225.0);
  EXPECT_TRUE(parseDouble("+3", V));
  EXPECT_EQ(V, 3.0);
}

TEST(Str, ParseDoubleHexFloatRoundTrip) {
  // Deserializers rely on parsing the printf %a form back exactly.
  double Cases[] = {0.0, 1.0, -0.3333333333333333, 12.75, 1e-300};
  for (double Expected : Cases) {
    char Buffer[64];
    std::snprintf(Buffer, sizeof(Buffer), "%a", Expected);
    double Actual = 42.0;
    EXPECT_TRUE(parseDouble(Buffer, Actual)) << Buffer;
    EXPECT_EQ(Actual, Expected) << Buffer;
  }
  double V = 0.0;
  EXPECT_TRUE(parseDouble("-0x1.8p+3", V));
  EXPECT_EQ(V, -12.0);
}

TEST(Str, ParseDoubleRejectsMalformed) {
  double V = 0.0;
  EXPECT_FALSE(parseDouble("", V));
  EXPECT_FALSE(parseDouble(".", V));
  EXPECT_FALSE(parseDouble("1.5x", V));
  EXPECT_FALSE(parseDouble("0x", V));
  EXPECT_FALSE(parseDouble("--1", V));
  EXPECT_FALSE(parseDouble("1 ", V));
}

TEST(Str, SplitFieldsCollapsesRuns) {
  auto Fields = splitFields("  a\t\tbb  \n ccc ");
  ASSERT_EQ(Fields.size(), 3u);
  EXPECT_EQ(Fields[0], "a");
  EXPECT_EQ(Fields[1], "bb");
  EXPECT_EQ(Fields[2], "ccc");
  EXPECT_TRUE(splitFields("   ").empty());
  EXPECT_TRUE(splitFields("").empty());
}

TEST(Str, RenderTableAligns) {
  std::string T = renderTable({"name", "x"}, {{"long-name", "1"}, {"b", "22"}});
  EXPECT_NE(T.find("| name      | x  |"), std::string::npos);
  EXPECT_NE(T.find("| long-name | 1  |"), std::string::npos);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer T;
  volatile double Sink = 0.0;
  for (int I = 0; I < 100000; ++I)
    Sink = Sink + I * 0.5;
  EXPECT_GT(T.seconds(), 0.0);
  double First = T.seconds();
  T.reset();
  EXPECT_LE(T.seconds(), First + 1.0);
}
