//===- CliTests.cpp - Tests for the granii-cli driver ------------------------===//

#include "CliDriver.h"

#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace granii::cli;

namespace {

/// Writes a DSL model file into the test temp dir and returns its path.
std::string writeModelFile(const std::string &Name,
                           const std::string &Contents) {
  std::string Path = ::testing::TempDir() + "/" + Name;
  std::ofstream Out(Path);
  Out << Contents;
  return Path;
}

/// The canonical GCN example, shared with the CI smoke test and the docs
/// (GRANII_EXAMPLES_DIR is injected by tests/CMakeLists.txt).
std::string gcnExamplePath() {
  return std::string(GRANII_EXAMPLES_DIR) + "/gcn.gnn";
}

} // namespace

TEST(Cli, NoArgsPrintsUsage) {
  std::string Out, Err;
  EXPECT_EQ(runCli({}, Out, Err), 2);
  EXPECT_NE(Err.find("usage"), std::string::npos);
}

TEST(Cli, UnknownCommandRejected) {
  std::string Out, Err;
  EXPECT_EQ(runCli({"frobnicate"}, Out, Err), 2);
  EXPECT_NE(Err.find("unknown command"), std::string::npos);
}

TEST(Cli, CompileReportsOfflineStage) {
  std::string Path = gcnExamplePath();
  std::string Out, Err;
  ASSERT_EQ(runCli({"compile", Path}, Out, Err), 0) << Err;
  EXPECT_NE(Out.find("model 'GCN'"), std::string::npos);
  EXPECT_NE(Out.find("16 compositions enumerated"), std::string::npos);
  EXPECT_NE(Out.find("4 promoted"), std::string::npos);
  EXPECT_NE(Out.find("scale_both"), std::string::npos);
}

TEST(Cli, CompileWithCodegenEmitsDispatcher) {
  std::string Path = gcnExamplePath();
  std::string Out, Err;
  ASSERT_EQ(runCli({"compile", Path, "--codegen"}, Out, Err), 0) << Err;
  EXPECT_NE(Out.find("GCN_forward"), std::string::npos);
  EXPECT_NE(Out.find("if (In.KIn >= In.KOut)"), std::string::npos);
}

TEST(Cli, CompileWithDotEmitsDigraphs) {
  std::string Path = gcnExamplePath();
  std::string Out, Err;
  ASSERT_EQ(runCli({"compile", Path, "--dot"}, Out, Err), 0) << Err;
  EXPECT_NE(Out.find("digraph \"GCN_ir\""), std::string::npos);
  EXPECT_NE(Out.find("digraph \"GCN_plan0\""), std::string::npos);
}

TEST(Cli, CompileMissingFileFails) {
  std::string Out, Err;
  EXPECT_EQ(runCli({"compile", "/nonexistent/m.gnn"}, Out, Err), 1);
  EXPECT_NE(Err.find("cannot open"), std::string::npos);
}

TEST(Cli, CompileParseErrorSurfacesDiagnostic) {
  std::string Path = writeModelFile("cli_bad.gnn", "model X { output y; }");
  std::string Out, Err;
  EXPECT_EQ(runCli({"compile", Path}, Out, Err), 1);
  EXPECT_NE(Err.find("undefined name 'y'"), std::string::npos);
}

TEST(Cli, RunOnSyntheticGraph) {
  std::string Path = gcnExamplePath();
  std::string Out, Err;
  ASSERT_EQ(runCli({"run", Path, "--graph", "synth:belgium-osm", "--kin",
                    "16", "--kout", "32", "--hw", "h100", "--iters", "50"},
                   Out, Err),
            0)
      << Err;
  EXPECT_NE(Out.find("graph 'belgium-osm'"), std::string::npos);
  EXPECT_NE(Out.find("candidate #"), std::string::npos);
  EXPECT_NE(Out.find("output: 4096 x 32"), std::string::npos);
}

TEST(Cli, RunProfileReportsStepsAndZeroAllocations) {
  std::string Path = gcnExamplePath();
  std::string Out, Err;
  ASSERT_EQ(runCli({"run", Path, "--graph", "synth:coauthors", "--kin", "16",
                    "--kout", "8", "--profile"},
                   Out, Err),
            0)
      << Err;
  EXPECT_NE(Out.find("per-step profile (steady state):"), std::string::npos);
  // Table columns and at least one kernel row.
  EXPECT_NE(Out.find("GFLOP/s"), std::string::npos);
  EXPECT_NE(Out.find("gemm"), std::string::npos);
  // Planned memory line and the zero-allocation assertion.
  EXPECT_NE(Out.find("planned memory: peak"), std::string::npos);
  EXPECT_NE(Out.find("steady-state allocations: 0"), std::string::npos);
  EXPECT_EQ(Err.find("steady-state run performed"), std::string::npos);
}

TEST(Cli, RunTrainingMode) {
  std::string Path = gcnExamplePath();
  std::string Out, Err;
  ASSERT_EQ(runCli({"run", Path, "--graph", "synth:coauthors", "--kin", "8",
                    "--kout", "8", "--train"},
                   Out, Err),
            0)
      << Err;
  EXPECT_NE(Out.find("fwd+bwd"), std::string::npos);
}

TEST(Cli, RunWithReorderReportsLocalityImprovement) {
  std::string Path = gcnExamplePath();
  std::string Out, Err;
  ASSERT_EQ(runCli({"run", Path, "--graph", "synth:reddit", "--kin", "16",
                    "--kout", "16", "--reorder", "rcm", "--profile"},
                   Out, Err),
            0)
      << Err;
  EXPECT_NE(Out.find("reorder rcm: bandwidth"), std::string::npos);
  EXPECT_NE(Out.find("avg row span"), std::string::npos);
  // Reordering must not cost the zero-allocation steady state.
  EXPECT_NE(Out.find("steady-state allocations: 0"), std::string::npos);
}

TEST(Cli, RunRejectsUnknownReorderPolicy) {
  std::string Path = gcnExamplePath();
  std::string Out, Err;
  EXPECT_EQ(runCli({"run", Path, "--graph", "synth:coauthors", "--reorder",
                    "hilbert"},
                   Out, Err),
            2);
  EXPECT_NE(Err.find("unknown reorder policy"), std::string::npos);
}

TEST(Cli, RunRejectsUnknownHardware) {
  std::string Path = gcnExamplePath();
  std::string Out, Err;
  EXPECT_EQ(runCli({"run", Path, "--graph", "synth:coauthors", "--hw",
                    "tpu"},
                   Out, Err),
            2);
  EXPECT_NE(Err.find("unknown hardware"), std::string::npos);
}

TEST(Cli, RunRejectsUnknownSyntheticGraph) {
  std::string Path = gcnExamplePath();
  std::string Out, Err;
  EXPECT_EQ(
      runCli({"run", Path, "--graph", "synth:nosuch"}, Out, Err), 1);
  EXPECT_NE(Err.find("unknown synthetic graph"), std::string::npos);
}

TEST(Cli, GraphGenRoundTripsThroughRun) {
  std::string MtxPath = ::testing::TempDir() + "/cli_graph.mtx";
  std::string Out, Err;
  ASSERT_EQ(runCli({"graphgen", "coauthors", MtxPath}, Out, Err), 0) << Err;
  EXPECT_NE(Out.find("wrote coauthors"), std::string::npos);

  std::string ModelPath = gcnExamplePath();
  std::string Out2, Err2;
  ASSERT_EQ(runCli({"run", ModelPath, "--graph", MtxPath, "--kin", "8",
                    "--kout", "8"},
                   Out2, Err2),
            0)
      << Err2;
  EXPECT_NE(Out2.find("candidate #"), std::string::npos);
  std::remove(MtxPath.c_str());
}

TEST(Cli, CustomAttentionModelCompiles) {
  const char *GatSource = R"(model MiniGAT {
    input graph A;
    input features H;
    param weight W;
    param attn_src asrc;
    param attn_dst adst;
    theta = matmul(H, W);
    alpha = attention(A, theta, asrc, adst);
    output relu(aggregate(alpha, theta));
  })";
  std::string Path = writeModelFile("cli_gat.gnn", GatSource);
  std::string Out, Err;
  ASSERT_EQ(runCli({"compile", Path}, Out, Err), 0) << Err;
  EXPECT_NE(Out.find("2 compositions enumerated"), std::string::npos);
  EXPECT_NE(Out.find("edge_softmax"), std::string::npos);
}

TEST(Cli, RunDefaultsToCoauthorsGraph) {
  std::string Out, Err;
  ASSERT_EQ(runCli({"run", gcnExamplePath(), "--kin", "8", "--kout", "8"},
                   Out, Err),
            0)
      << Err;
  EXPECT_NE(Out.find("graph 'coauthors'"), std::string::npos);
}

TEST(Cli, RunWithTraceWritesPerfettoJson) {
  std::string TracePath = ::testing::TempDir() + "/cli.trace.json";
  std::string Out, Err;
  ASSERT_EQ(runCli({"run", gcnExamplePath(), "--kin", "16", "--kout", "8",
                    "--trace=" + TracePath},
                   Out, Err),
            0)
      << Err;
  EXPECT_NE(Out.find("trace: "), std::string::npos);

  std::ifstream In(TracePath);
  ASSERT_TRUE(In.good());
  std::ostringstream Contents;
  Contents << In.rdbuf();
  std::string Error;
  std::optional<granii::JsonValue> Doc =
      granii::parseJson(Contents.str(), &Error);
  ASSERT_TRUE(Doc) << Error;

  // Optimizer-phase spans and counter-annotated executor step spans.
  bool SawPhase = false, SawStepWithCounters = false;
  for (const granii::JsonValue &E : Doc->find("traceEvents")->array()) {
    std::string Cat = E.stringOr("cat", "");
    std::string Name = E.stringOr("name", "");
    if (Cat == "optimizer" &&
        (Name == "parse" || Name == "enumerate" || Name == "prune" ||
         Name == "cost-model"))
      SawPhase = true;
    if (Cat == "executor" && E.find("args") &&
        E.find("args")->find("charged_seconds"))
      SawStepWithCounters = true;
  }
  EXPECT_TRUE(SawPhase);
  EXPECT_TRUE(SawStepWithCounters);
  std::remove(TracePath.c_str());
}

TEST(Cli, TraceFlagRequiresAPath) {
  std::string Out, Err;
  EXPECT_EQ(runCli({"run", gcnExamplePath(), "--trace"}, Out, Err), 2);
  EXPECT_NE(Err.find("--trace expects an output path"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Unknown-flag rejection (one regression test per subcommand)
//===----------------------------------------------------------------------===//

TEST(Cli, EverySubcommandRejectsUnknownFlags) {
  struct Case {
    std::vector<std::string> Args;
    const char *Cmd;
  };
  std::string Model = gcnExamplePath();
  const std::vector<Case> Cases = {
      {{"compile", Model, "--frobnicate"}, "compile"},
      {{"run", Model, "--frobnicate"}, "run"},
      {{"verify", Model, "--frobnicate"}, "verify"},
      {{"graphgen", "mycielskian", "/dev/null", "--frobnicate"}, "graphgen"},
      {{"serve", "--socket", "/tmp/never-bound.sock", "--frobnicate"},
       "serve"},
      {{"call", "--socket", "/tmp/never-bound.sock", "--frobnicate"}, "call"},
  };
  for (const Case &C : Cases) {
    std::string Out, Err;
    EXPECT_EQ(runCli(C.Args, Out, Err), 2) << C.Cmd;
    EXPECT_NE(Err.find("unknown flag for '" + std::string(C.Cmd) + "'"),
              std::string::npos)
        << C.Cmd << ": " << Err;
    EXPECT_NE(Err.find("--frobnicate"), std::string::npos) << C.Cmd;
    // The diagnostic lists what IS supported, so typos are self-serviceable.
    EXPECT_NE(Err.find("supported flags"), std::string::npos) << C.Cmd;
  }
}

TEST(Cli, UnknownFlagDiagnosticNamesEveryOffender) {
  std::string Out, Err;
  EXPECT_EQ(runCli({"compile", gcnExamplePath(), "--bogus-one", "--bogus-two"},
                   Out, Err),
            2);
  EXPECT_NE(Err.find("--bogus-one"), std::string::npos);
  EXPECT_NE(Err.find("--bogus-two"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// run --out and the serve/call surface
//===----------------------------------------------------------------------===//

TEST(Cli, RunWritesBinaryOutputFile) {
  std::string OutPath = ::testing::TempDir() + "/cli-run-out.bin";
  std::string Out, Err;
  ASSERT_EQ(runCli({"run", gcnExamplePath(), "--graph", "synth:mycielskian",
                    "--kin", "8", "--kout", "12", "--out", OutPath},
                   Out, Err),
            0)
      << Err;
  EXPECT_NE(Out.find("wrote output"), std::string::npos);

  std::ifstream In(OutPath, std::ios::binary);
  ASSERT_TRUE(In.good());
  uint32_t Magic = 0;
  int64_t Rows = 0, Cols = 0;
  uint64_t Count = 0;
  In.read(reinterpret_cast<char *>(&Magic), sizeof(Magic));
  In.read(reinterpret_cast<char *>(&Rows), sizeof(Rows));
  In.read(reinterpret_cast<char *>(&Cols), sizeof(Cols));
  In.read(reinterpret_cast<char *>(&Count), sizeof(Count));
  EXPECT_EQ(Magic, 0x4f4e5247u); // "GRNO"
  EXPECT_GT(Rows, 0);
  EXPECT_EQ(Cols, 12);
  EXPECT_EQ(Count, static_cast<uint64_t>(Rows) * static_cast<uint64_t>(Cols));
  In.seekg(0, std::ios::end);
  EXPECT_EQ(static_cast<uint64_t>(In.tellg()),
            sizeof(Magic) + sizeof(Rows) + sizeof(Cols) + sizeof(Count) +
                Count * sizeof(float));
  std::remove(OutPath.c_str());
}

TEST(Cli, ServeRequiresASocketPath) {
  std::string Out, Err;
  EXPECT_EQ(runCli({"serve"}, Out, Err), 2);
  EXPECT_NE(Err.find("--socket"), std::string::npos);
}

TEST(Cli, CallRequiresASocketPath) {
  std::string Out, Err;
  EXPECT_EQ(runCli({"call", gcnExamplePath()}, Out, Err), 2);
  EXPECT_NE(Err.find("--socket"), std::string::npos);
}

TEST(Cli, CallWithoutDaemonExplainsTheFailure) {
  std::string Out, Err;
  EXPECT_EQ(runCli({"call", "--socket", "/tmp/granii-no-such-daemon.sock",
                    gcnExamplePath()},
                   Out, Err),
            1);
  EXPECT_NE(Err.find("daemon"), std::string::npos);
}
