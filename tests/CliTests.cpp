//===- CliTests.cpp - Tests for the granii-cli driver ------------------------===//

#include "CliDriver.h"

#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace granii::cli;

namespace {

/// Writes a DSL model file into the test temp dir and returns its path.
std::string writeModelFile(const std::string &Name,
                           const std::string &Contents) {
  std::string Path = ::testing::TempDir() + "/" + Name;
  std::ofstream Out(Path);
  Out << Contents;
  return Path;
}

/// The canonical GCN example, shared with the CI smoke test and the docs
/// (GRANII_EXAMPLES_DIR is injected by tests/CMakeLists.txt).
std::string gcnExamplePath() {
  return std::string(GRANII_EXAMPLES_DIR) + "/gcn.gnn";
}

} // namespace

TEST(Cli, NoArgsPrintsUsage) {
  std::string Out, Err;
  EXPECT_EQ(runCli({}, Out, Err), 2);
  EXPECT_NE(Err.find("usage"), std::string::npos);
}

TEST(Cli, UnknownCommandRejected) {
  std::string Out, Err;
  EXPECT_EQ(runCli({"frobnicate"}, Out, Err), 2);
  EXPECT_NE(Err.find("unknown command"), std::string::npos);
}

TEST(Cli, CompileReportsOfflineStage) {
  std::string Path = gcnExamplePath();
  std::string Out, Err;
  ASSERT_EQ(runCli({"compile", Path}, Out, Err), 0) << Err;
  EXPECT_NE(Out.find("model 'GCN'"), std::string::npos);
  EXPECT_NE(Out.find("16 compositions enumerated"), std::string::npos);
  EXPECT_NE(Out.find("4 promoted"), std::string::npos);
  EXPECT_NE(Out.find("scale_both"), std::string::npos);
}

TEST(Cli, CompileWithCodegenEmitsDispatcher) {
  std::string Path = gcnExamplePath();
  std::string Out, Err;
  ASSERT_EQ(runCli({"compile", Path, "--codegen"}, Out, Err), 0) << Err;
  EXPECT_NE(Out.find("GCN_forward"), std::string::npos);
  EXPECT_NE(Out.find("if (In.KIn >= In.KOut)"), std::string::npos);
}

TEST(Cli, CompileWithDotEmitsDigraphs) {
  std::string Path = gcnExamplePath();
  std::string Out, Err;
  ASSERT_EQ(runCli({"compile", Path, "--dot"}, Out, Err), 0) << Err;
  EXPECT_NE(Out.find("digraph \"GCN_ir\""), std::string::npos);
  EXPECT_NE(Out.find("digraph \"GCN_plan0\""), std::string::npos);
}

TEST(Cli, CompileMissingFileFails) {
  std::string Out, Err;
  EXPECT_EQ(runCli({"compile", "/nonexistent/m.gnn"}, Out, Err), 1);
  EXPECT_NE(Err.find("cannot open"), std::string::npos);
}

TEST(Cli, CompileParseErrorSurfacesDiagnostic) {
  std::string Path = writeModelFile("cli_bad.gnn", "model X { output y; }");
  std::string Out, Err;
  EXPECT_EQ(runCli({"compile", Path}, Out, Err), 1);
  EXPECT_NE(Err.find("undefined name 'y'"), std::string::npos);
}

TEST(Cli, RunOnSyntheticGraph) {
  std::string Path = gcnExamplePath();
  std::string Out, Err;
  ASSERT_EQ(runCli({"run", Path, "--graph", "synth:belgium-osm", "--kin",
                    "16", "--kout", "32", "--hw", "h100", "--iters", "50"},
                   Out, Err),
            0)
      << Err;
  EXPECT_NE(Out.find("graph 'belgium-osm'"), std::string::npos);
  EXPECT_NE(Out.find("candidate #"), std::string::npos);
  EXPECT_NE(Out.find("output: 4096 x 32"), std::string::npos);
}

TEST(Cli, RunProfileReportsStepsAndZeroAllocations) {
  std::string Path = gcnExamplePath();
  std::string Out, Err;
  ASSERT_EQ(runCli({"run", Path, "--graph", "synth:coauthors", "--kin", "16",
                    "--kout", "8", "--profile"},
                   Out, Err),
            0)
      << Err;
  EXPECT_NE(Out.find("per-step profile (steady state):"), std::string::npos);
  // Table columns and at least one kernel row.
  EXPECT_NE(Out.find("GFLOP/s"), std::string::npos);
  EXPECT_NE(Out.find("gemm"), std::string::npos);
  // Planned memory line and the zero-allocation assertion.
  EXPECT_NE(Out.find("planned memory: peak"), std::string::npos);
  EXPECT_NE(Out.find("steady-state allocations: 0"), std::string::npos);
  EXPECT_EQ(Err.find("steady-state run performed"), std::string::npos);
}

TEST(Cli, RunTrainingMode) {
  std::string Path = gcnExamplePath();
  std::string Out, Err;
  ASSERT_EQ(runCli({"run", Path, "--graph", "synth:coauthors", "--kin", "8",
                    "--kout", "8", "--train"},
                   Out, Err),
            0)
      << Err;
  EXPECT_NE(Out.find("fwd+bwd"), std::string::npos);
}

TEST(Cli, RunWithReorderReportsLocalityImprovement) {
  std::string Path = gcnExamplePath();
  std::string Out, Err;
  ASSERT_EQ(runCli({"run", Path, "--graph", "synth:reddit", "--kin", "16",
                    "--kout", "16", "--reorder", "rcm", "--profile"},
                   Out, Err),
            0)
      << Err;
  EXPECT_NE(Out.find("reorder rcm: bandwidth"), std::string::npos);
  EXPECT_NE(Out.find("avg row span"), std::string::npos);
  // Reordering must not cost the zero-allocation steady state.
  EXPECT_NE(Out.find("steady-state allocations: 0"), std::string::npos);
}

TEST(Cli, RunRejectsUnknownReorderPolicy) {
  std::string Path = gcnExamplePath();
  std::string Out, Err;
  EXPECT_EQ(runCli({"run", Path, "--graph", "synth:coauthors", "--reorder",
                    "hilbert"},
                   Out, Err),
            2);
  EXPECT_NE(Err.find("unknown reorder policy"), std::string::npos);
}

TEST(Cli, RunRejectsUnknownHardware) {
  std::string Path = gcnExamplePath();
  std::string Out, Err;
  EXPECT_EQ(runCli({"run", Path, "--graph", "synth:coauthors", "--hw",
                    "tpu"},
                   Out, Err),
            2);
  EXPECT_NE(Err.find("unknown hardware"), std::string::npos);
}

TEST(Cli, RunRejectsUnknownSyntheticGraph) {
  std::string Path = gcnExamplePath();
  std::string Out, Err;
  EXPECT_EQ(
      runCli({"run", Path, "--graph", "synth:nosuch"}, Out, Err), 1);
  EXPECT_NE(Err.find("unknown synthetic graph"), std::string::npos);
}

TEST(Cli, GraphGenRoundTripsThroughRun) {
  std::string MtxPath = ::testing::TempDir() + "/cli_graph.mtx";
  std::string Out, Err;
  ASSERT_EQ(runCli({"graphgen", "coauthors", MtxPath}, Out, Err), 0) << Err;
  EXPECT_NE(Out.find("wrote coauthors"), std::string::npos);

  std::string ModelPath = gcnExamplePath();
  std::string Out2, Err2;
  ASSERT_EQ(runCli({"run", ModelPath, "--graph", MtxPath, "--kin", "8",
                    "--kout", "8"},
                   Out2, Err2),
            0)
      << Err2;
  EXPECT_NE(Out2.find("candidate #"), std::string::npos);
  std::remove(MtxPath.c_str());
}

TEST(Cli, CustomAttentionModelCompiles) {
  const char *GatSource = R"(model MiniGAT {
    input graph A;
    input features H;
    param weight W;
    param attn_src asrc;
    param attn_dst adst;
    theta = matmul(H, W);
    alpha = attention(A, theta, asrc, adst);
    output relu(aggregate(alpha, theta));
  })";
  std::string Path = writeModelFile("cli_gat.gnn", GatSource);
  std::string Out, Err;
  ASSERT_EQ(runCli({"compile", Path}, Out, Err), 0) << Err;
  EXPECT_NE(Out.find("2 compositions enumerated"), std::string::npos);
  EXPECT_NE(Out.find("edge_softmax"), std::string::npos);
}

TEST(Cli, RunDefaultsToCoauthorsGraph) {
  std::string Out, Err;
  ASSERT_EQ(runCli({"run", gcnExamplePath(), "--kin", "8", "--kout", "8"},
                   Out, Err),
            0)
      << Err;
  EXPECT_NE(Out.find("graph 'coauthors'"), std::string::npos);
}

TEST(Cli, RunWithTraceWritesPerfettoJson) {
  std::string TracePath = ::testing::TempDir() + "/cli.trace.json";
  std::string Out, Err;
  ASSERT_EQ(runCli({"run", gcnExamplePath(), "--kin", "16", "--kout", "8",
                    "--trace=" + TracePath},
                   Out, Err),
            0)
      << Err;
  EXPECT_NE(Out.find("trace: "), std::string::npos);

  std::ifstream In(TracePath);
  ASSERT_TRUE(In.good());
  std::ostringstream Contents;
  Contents << In.rdbuf();
  std::string Error;
  std::optional<granii::JsonValue> Doc =
      granii::parseJson(Contents.str(), &Error);
  ASSERT_TRUE(Doc) << Error;

  // Optimizer-phase spans and counter-annotated executor step spans.
  bool SawPhase = false, SawStepWithCounters = false;
  for (const granii::JsonValue &E : Doc->find("traceEvents")->array()) {
    std::string Cat = E.stringOr("cat", "");
    std::string Name = E.stringOr("name", "");
    if (Cat == "optimizer" &&
        (Name == "parse" || Name == "enumerate" || Name == "prune" ||
         Name == "cost-model"))
      SawPhase = true;
    if (Cat == "executor" && E.find("args") &&
        E.find("args")->find("charged_seconds"))
      SawStepWithCounters = true;
  }
  EXPECT_TRUE(SawPhase);
  EXPECT_TRUE(SawStepWithCounters);
  std::remove(TracePath.c_str());
}

TEST(Cli, TraceFlagRequiresAPath) {
  std::string Out, Err;
  EXPECT_EQ(runCli({"run", gcnExamplePath(), "--trace"}, Out, Err), 2);
  EXPECT_NE(Err.find("--trace expects an output path"), std::string::npos);
}
