//===- BenchDiffTests.cpp - Tests for granii-bench-diff ----------------------===//

#include "BenchDiff.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace granii::benchdiff;

namespace {

/// Writes a granii-bench-v1 report with the given benchmark entries (JSON
/// object bodies without braces) and returns its path.
std::string writeReport(const std::string &Name,
                        const std::vector<std::string> &Entries) {
  std::string Path = ::testing::TempDir() + "/" + Name;
  std::ofstream Out(Path);
  Out << "{\"schema\": \"granii-bench-v1\", \"git_sha\": \"test\", "
         "\"threads\": 1, \"benchmarks\": [";
  for (size_t I = 0; I < Entries.size(); ++I)
    Out << (I ? ", " : "") << "{" << Entries[I] << "}";
  Out << "]}\n";
  return Path;
}

/// Like writeReport but with an extra header fragment (e.g. a "formats"
/// array) spliced in after the thread count.
std::string writeReportWithHeader(const std::string &Name,
                                  const std::string &Header,
                                  const std::vector<std::string> &Entries) {
  std::string Path = ::testing::TempDir() + "/" + Name;
  std::ofstream Out(Path);
  Out << "{\"schema\": \"granii-bench-v1\", \"git_sha\": \"test\", "
         "\"threads\": 1, "
      << Header << ", \"benchmarks\": [";
  for (size_t I = 0; I < Entries.size(); ++I)
    Out << (I ? ", " : "") << "{" << Entries[I] << "}";
  Out << "]}\n";
  return Path;
}

std::string entry(const std::string &Id, double Median,
                  const std::string &Extra = "") {
  std::string E = "\"id\": \"" + Id + "\", \"median_seconds\": " +
                  std::to_string(Median) + ", \"p10_seconds\": " +
                  std::to_string(Median) + ", \"p90_seconds\": " +
                  std::to_string(Median);
  if (!Extra.empty())
    E += ", " + Extra;
  return E;
}

} // namespace

TEST(BenchDiff, UsageWithoutTwoFiles) {
  std::string Out, Err;
  EXPECT_EQ(runBenchDiff({}, Out, Err), 2);
  EXPECT_NE(Err.find("usage"), std::string::npos);
}

TEST(BenchDiff, IdenticalReportsPass) {
  std::string Base = writeReport("bd_base1.json", {entry("a", 1.0)});
  std::string Head = writeReport("bd_head1.json", {entry("a", 1.0)});
  std::string Out, Err;
  EXPECT_EQ(runBenchDiff({Base, Head}, Out, Err), 0) << Err;
  EXPECT_NE(Out.find("0 regression(s)"), std::string::npos);
}

TEST(BenchDiff, ImprovementPassesAndIsReported) {
  std::string Base = writeReport("bd_base2.json", {entry("a", 1.0)});
  std::string Head = writeReport("bd_head2.json", {entry("a", 0.5)});
  std::string Out, Err;
  EXPECT_EQ(runBenchDiff({Base, Head}, Out, Err), 0) << Err;
  EXPECT_NE(Out.find("improved"), std::string::npos);
  EXPECT_NE(Out.find("1 improvement(s)"), std::string::npos);
}

TEST(BenchDiff, RegressionBeyondThresholdFails) {
  std::string Base = writeReport("bd_base3.json", {entry("a", 1.0)});
  std::string Head = writeReport("bd_head3.json", {entry("a", 1.25)});
  std::string Out, Err;
  EXPECT_EQ(runBenchDiff({Base, Head}, Out, Err), 1);
  EXPECT_NE(Out.find("REGRESSED"), std::string::npos);
  EXPECT_NE(Err.find("regressed beyond the threshold"), std::string::npos);
}

TEST(BenchDiff, RegressionWithinThresholdPasses) {
  std::string Base = writeReport("bd_base4.json", {entry("a", 1.0)});
  std::string Head = writeReport("bd_head4.json", {entry("a", 1.05)});
  std::string Out, Err;
  EXPECT_EQ(runBenchDiff({Base, Head}, Out, Err), 0) << Err;
}

TEST(BenchDiff, GlobalThresholdFlagOverrides) {
  std::string Base = writeReport("bd_base5.json", {entry("a", 1.0)});
  std::string Head = writeReport("bd_head5.json", {entry("a", 1.05)});
  std::string Out, Err;
  EXPECT_EQ(runBenchDiff({Base, Head, "--threshold=0.02"}, Out, Err), 1);
}

TEST(BenchDiff, PerRecordThresholdOverridesGlobal) {
  std::string Base =
      writeReport("bd_base6.json", {entry("a", 1.0, "\"threshold\": 0.5")});
  std::string Head = writeReport("bd_head6.json", {entry("a", 1.3)});
  std::string Out, Err;
  // +30% is beyond the 10% default but within the record's own 50%.
  EXPECT_EQ(runBenchDiff({Base, Head}, Out, Err), 0) << Err;
}

TEST(BenchDiff, UngatedRecordsReportButNeverFail) {
  std::string Base =
      writeReport("bd_base7.json", {entry("a", 1.0, "\"gate\": false")});
  std::string Head = writeReport("bd_head7.json", {entry("a", 3.0)});
  std::string Out, Err;
  EXPECT_EQ(runBenchDiff({Base, Head}, Out, Err), 0) << Err;
  EXPECT_NE(Out.find("regressed (ungated)"), std::string::npos);
}

TEST(BenchDiff, NoisySamplesWidenTheGate) {
  // Baseline spread (p90 - p10) / median = 40%: a +20% median delta is
  // within the noise floor even though it exceeds the 10% default.
  std::string Base = writeReport(
      "bd_base8.json", {"\"id\": \"a\", \"median_seconds\": 1.0, "
                        "\"p10_seconds\": 0.8, \"p90_seconds\": 1.2"});
  std::string Head = writeReport("bd_head8.json", {entry("a", 1.2)});
  std::string Out, Err;
  EXPECT_EQ(runBenchDiff({Base, Head}, Out, Err), 0) << Err;
}

TEST(BenchDiff, MismatchedSetsAreReported) {
  std::string Base = writeReport("bd_base9.json",
                                 {entry("a", 1.0), entry("gone", 1.0)});
  std::string Head = writeReport("bd_head9.json",
                                 {entry("a", 1.0), entry("new", 1.0)});
  std::string Out, Err;
  EXPECT_EQ(runBenchDiff({Base, Head}, Out, Err), 0) << Err;
  EXPECT_NE(Err.find("'gone' in baseline but missing from head"),
            std::string::npos);
  EXPECT_NE(Err.find("'new' in head but missing from baseline"),
            std::string::npos);
}

TEST(BenchDiff, MultipleHeadFilesUnion) {
  std::string Base = writeReport("bd_base10.json",
                                 {entry("a", 1.0), entry("b", 1.0)});
  std::string HeadA = writeReport("bd_heada.json", {entry("a", 1.0)});
  std::string HeadB = writeReport("bd_headb.json", {entry("b", 2.0)});
  std::string Out, Err;
  // The union covers both records; b regresses.
  EXPECT_EQ(runBenchDiff({Base, HeadA, HeadB}, Out, Err), 1);
  EXPECT_NE(Out.find("compared 2 benchmark(s)"), std::string::npos);
}

TEST(BenchDiff, RejectsMalformedAndWrongSchema) {
  std::string Bad = ::testing::TempDir() + "/bd_bad.json";
  {
    std::ofstream Out(Bad);
    Out << "{not json";
  }
  std::string Wrong = ::testing::TempDir() + "/bd_wrong.json";
  {
    std::ofstream Out(Wrong);
    Out << "{\"schema\": \"v0\", \"benchmarks\": []}";
  }
  std::string Good = writeReport("bd_good.json", {entry("a", 1.0)});
  std::string Out, Err;
  EXPECT_EQ(runBenchDiff({Bad, Good}, Out, Err), 2);
  Err.clear();
  EXPECT_EQ(runBenchDiff({Good, Wrong}, Out, Err), 2);
  EXPECT_NE(Err.find("unsupported schema"), std::string::npos);
  Err.clear();
  EXPECT_EQ(runBenchDiff({Good, "/nonexistent/x.json"}, Out, Err), 2);
}

// A baseline record measured under a sparse format the head build does not
// list in its "formats" header is skipped — not warned about as missing,
// and never counted as a regression.
TEST(BenchDiff, FormatUnavailableInHeadIsSkippedNotWarned) {
  std::string Base = writeReportWithHeader(
      "bd_basefmt.json", "\"formats\": [\"csr\", \"ell\", \"hyb\"]",
      {entry("micro/spmm_w/64/csr/scalar", 1.0, "\"format\": \"csr\""),
       entry("micro/spmm_w/64/hyb/scalar", 1.0, "\"format\": \"hyb\"")});
  std::string Head = writeReportWithHeader(
      "bd_headfmt.json", "\"formats\": [\"csr\", \"ell\"]",
      {entry("micro/spmm_w/64/csr/scalar", 1.0, "\"format\": \"csr\"")});
  std::string Out, Err;
  EXPECT_EQ(runBenchDiff({Base, Head}, Out, Err), 0) << Err;
  EXPECT_NE(Out.find("skipped (format hyb unavailable)"), std::string::npos)
      << Out;
  EXPECT_EQ(Err.find("missing from head"), std::string::npos) << Err;
}

// Without a "formats" header on the head (a report predating the field),
// the absence is a plain missing-benchmark warning, not a silent skip.
TEST(BenchDiff, MissingFormatsHeaderFallsBackToWarning) {
  std::string Base = writeReport(
      "bd_basefmt2.json",
      {entry("micro/spmm_w/64/hyb/scalar", 1.0, "\"format\": \"hyb\"")});
  std::string Head = writeReport("bd_headfmt2.json", {entry("other", 1.0)});
  std::string Out, Err;
  EXPECT_EQ(runBenchDiff({Base, Head}, Out, Err), 0);
  EXPECT_NE(Err.find("missing from head"), std::string::npos) << Err;
}

TEST(BenchDiff, UnknownOptionRejected) {
  std::string Out, Err;
  EXPECT_EQ(runBenchDiff({"--frobnicate"}, Out, Err), 2);
  EXPECT_NE(Err.find("unknown option"), std::string::npos);
}
