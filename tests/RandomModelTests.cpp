//===- RandomModelTests.cpp - Randomized re-association properties ----------===//
//
// Property-based testing over randomly generated model IRs: whatever chain
// of normalizations, aggregations, additions and updates we build, every
// enumerated composition must compute the same function, the pruner must
// keep an analytically optimal candidate, and the generated code must name
// every candidate. This complements the fixed-model tests with structural
// diversity.
//
//===----------------------------------------------------------------------===//

#include "assoc/Enumerate.h"
#include "assoc/Prune.h"
#include "granii/Granii.h"
#include "graph/Generators.h"
#include "runtime/BufferPlan.h"
#include "runtime/CodeGen.h"
#include "support/Rng.h"
#include "verify/VerifyBuffers.h"
#include "verify/VerifyPlan.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace granii;

namespace {

/// Builds a random single-layer model IR:
///   h := H
///   repeat 1..3 times: h := one of
///     { aggregate(A, h), row_scale(D, h), row_scale(Dinv, h),
///       scale(c, h), h + aggregate(A, h) }
///   out := relu(h * W)
IRNodeRef randomModelIR(Rng &R) {
  IRNodeRef A = ir::adjacencyLeaf();
  IRNodeRef D = ir::degreeNormLeaf();
  IRNodeRef Dinv = ir::degreeInvLeaf();
  IRNodeRef H = ir::featuresLeaf();
  IRNodeRef W = ir::weightLeaf();

  IRNodeRef Cur = H;
  int Ops = 1 + static_cast<int>(R.nextBelow(3));
  for (int I = 0; I < Ops; ++I) {
    switch (R.nextBelow(5)) {
    case 0:
      Cur = ir::matMul({A, Cur});
      break;
    case 1:
      Cur = ir::rowBroadcast(D, Cur);
      break;
    case 2:
      Cur = ir::rowBroadcast(Dinv, Cur);
      break;
    case 3:
      Cur = ir::scale(0.5 + R.nextDouble(), Cur);
      break;
    case 4:
      Cur = ir::add({Cur, ir::matMul({A, Cur})});
      break;
    }
  }
  return ir::relu(ir::matMul({Cur, W}));
}

GnnModel wrapRandom(IRNodeRef Root, int Index) {
  GnnModel Model;
  Model.Name = "random" + std::to_string(Index);
  Model.Root = std::move(Root);
  Model.WeightCount = 1;
  return Model;
}

} // namespace

class RandomModels : public ::testing::TestWithParam<int> {};

TEST_P(RandomModels, AllCompositionsAgreeAndPruningIsSafe) {
  Rng R(1000 + static_cast<uint64_t>(GetParam()));
  IRNodeRef Root = randomModelIR(R);
  verifyIR(Root);
  GnnModel Model = wrapRandom(Root, GetParam());

  std::vector<CompositionPlan> All = enumerateCompositions(Root);
  ASSERT_FALSE(All.empty());
  std::vector<CompositionPlan> Promoted = pruneCompositions(All);
  ASSERT_FALSE(Promoted.empty());

  // Semantic equivalence of every plan on a random graph.
  Graph G = makeErdosRenyi(70, 420, 500 + GetParam());
  LayerParams Params = makeLayerParams(Model, G, 6, 9, GetParam());
  Executor Exec(HardwareModel::byName("cpu"));
  DenseMatrix Ref = Exec.run(All[0], Params.inputs(), Params.Stats).Output;
  EXPECT_FALSE(std::isnan(Ref.sum()));
  for (size_t I = 1; I < All.size(); ++I) {
    DenseMatrix Out = Exec.run(All[I], Params.inputs(), Params.Stats).Output;
    EXPECT_TRUE(Out.approxEquals(Ref, 5e-3f, 5e-3f))
        << "plan " << I << " of " << All.size() << " diverges by "
        << Out.maxAbsDiff(Ref) << "\n"
        << All[I].toString();
  }

  // The analytically cheapest plan survives pruning at random bindings.
  for (int Trial = 0; Trial < 4; ++Trial) {
    DimBinding B;
    B.N = 256 + static_cast<int64_t>(R.nextBelow(4096));
    B.E = B.N * (2 + static_cast<int64_t>(R.nextBelow(40)));
    B.KIn = 8 << R.nextBelow(5);
    B.KOut = 8 << R.nextBelow(5);
    double BestAll = 1e300, BestPromoted = 1e300;
    for (const CompositionPlan &P : All)
      BestAll = std::min(BestAll, P.flopCost(B, 100));
    for (const CompositionPlan &P : Promoted)
      BestPromoted = std::min(BestPromoted, P.flopCost(B, 100));
    EXPECT_LE(BestPromoted, BestAll * 1.0001);
  }

  // Codegen names every promoted candidate exactly once.
  std::string Code = generateDispatchCode(Model.Name, Promoted);
  for (size_t I = 0; I < Promoted.size(); ++I)
    EXPECT_NE(Code.find(Model.Name + "_candidate" + std::to_string(I) +
                        "(const Inputs"),
              std::string::npos);
}

TEST_P(RandomModels, TrainingBackwardIsFinite) {
  Rng R(9000 + static_cast<uint64_t>(GetParam()));
  IRNodeRef Root = randomModelIR(R);
  GnnModel Model = wrapRandom(Root, GetParam());
  Graph G = makeErdosRenyi(50, 240, 700 + GetParam());
  LayerParams Params = makeLayerParams(Model, G, 5, 6, GetParam());
  Executor Exec(HardwareModel::byName("cpu"));
  for (const CompositionPlan &P : pruneCompositions(
           enumerateCompositions(Root))) {
    ExecResult Res = Exec.runTraining(P, Params.inputs(), Params.Stats);
    ASSERT_TRUE(Res.WeightGrads.count("W"));
    EXPECT_FALSE(std::isnan(Res.WeightGrads.at("W").sum()));
    EXPECT_GT(Res.BackwardSeconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModels, ::testing::Range(0, 12));

//===----------------------------------------------------------------------===//
// Verifier coverage: whatever random model we build, every plan that
// survives pruning must pass the static checkers — plan legality, scenario
// annotations, the survivor-set invariant, and a clean buffer schedule
// under both embedding-size scenarios in both execution modes.
//===----------------------------------------------------------------------===//

class RandomVerify : public ::testing::TestWithParam<int> {};

TEST_P(RandomVerify, SurvivingPlansVerifyClean) {
  Rng R(3000 + static_cast<uint64_t>(GetParam()));
  IRNodeRef Root = randomModelIR(R);
  std::vector<CompositionPlan> Promoted =
      pruneCompositions(enumerateCompositions(Root));
  ASSERT_FALSE(Promoted.empty());

  DiagEngine Diags;
  for (const CompositionPlan &Plan : Promoted) {
    verifyPlanDiags(Plan, Diags);
    verifyScenarioAnnotations(Plan, Diags);
  }
  verifySurvivorSet(Promoted, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render();

  DimBinding Ge{.N = 4096, .KIn = 128, .KOut = 64, .E = 65536};
  DimBinding Lt{.N = 4096, .KIn = 64, .KOut = 128, .E = 65536};
  for (const CompositionPlan &Plan : Promoted)
    for (const DimBinding &Binding : {Ge, Lt})
      for (bool Training : {false, true}) {
        DiagEngine BufDiags;
        BufferPlan Buffers(Plan, Binding, Training);
        EXPECT_TRUE(verifyBufferPlan(Plan, Binding, Buffers, BufDiags))
            << Plan.Name << (Training ? " (training)" : "") << ":\n"
            << BufDiags.render();
      }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomVerify, ::testing::Range(0, 24));
