//===- JsonTests.cpp - Tests for the minimal JSON parser ---------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

using namespace granii;

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parseJson("null")->isNull());
  EXPECT_TRUE(parseJson("true")->boolean());
  EXPECT_FALSE(parseJson("false")->boolean());
  EXPECT_DOUBLE_EQ(parseJson("42")->number(), 42.0);
  EXPECT_DOUBLE_EQ(parseJson("-1.5e3")->number(), -1500.0);
  EXPECT_EQ(parseJson("\"hi\"")->str(), "hi");
}

TEST(Json, ParsesStringEscapes) {
  std::optional<JsonValue> V = parseJson(R"("a\"b\\c\n\tA")");
  ASSERT_TRUE(V);
  EXPECT_EQ(V->str(), "a\"b\\c\n\tA");
}

TEST(Json, ParsesNestedStructures) {
  std::optional<JsonValue> V =
      parseJson(R"({"a": [1, 2, {"b": "x"}], "c": {"d": true}})");
  ASSERT_TRUE(V);
  const JsonValue *A = V->find("a");
  ASSERT_NE(A, nullptr);
  ASSERT_EQ(A->array().size(), 3u);
  EXPECT_DOUBLE_EQ(A->array()[0].number(), 1.0);
  EXPECT_EQ(A->array()[2].stringOr("b", ""), "x");
  EXPECT_TRUE(V->find("c")->boolOr("d", false));
}

TEST(Json, PreservesObjectMemberOrder) {
  std::optional<JsonValue> V = parseJson(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(V);
  ASSERT_EQ(V->object().size(), 3u);
  EXPECT_EQ(V->object()[0].first, "z");
  EXPECT_EQ(V->object()[1].first, "a");
  EXPECT_EQ(V->object()[2].first, "m");
}

TEST(Json, AccessorsDefaultOnMissingKeys) {
  std::optional<JsonValue> V = parseJson(R"({"x": 1})");
  ASSERT_TRUE(V);
  EXPECT_DOUBLE_EQ(V->numberOr("missing", 7.0), 7.0);
  EXPECT_EQ(V->stringOr("missing", "d"), "d");
  EXPECT_TRUE(V->boolOr("missing", true));
  EXPECT_EQ(V->find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInput) {
  std::string Err;
  EXPECT_FALSE(parseJson("{", &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(parseJson("[1, 2,]"));
  EXPECT_FALSE(parseJson("{\"a\" 1}"));
  EXPECT_FALSE(parseJson("\"unterminated"));
  EXPECT_FALSE(parseJson("12 34"));
  EXPECT_FALSE(parseJson(""));
}

TEST(Json, EscapeRoundTrips) {
  std::string Raw = "quote\" backslash\\ newline\n tab\t ctrl\x01";
  std::optional<JsonValue> V = parseJson("\"" + jsonEscape(Raw) + "\"");
  ASSERT_TRUE(V);
  EXPECT_EQ(V->str(), Raw);
}
