//===- GbtTests.cpp - Tests for gradient-boosted regression trees -----------===//

#include "cost/Gbt.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace granii;

namespace {

/// Builds a dataset y = f(x) + noise over random feature vectors.
GbtDataset makeDataset(size_t Samples, size_t Features, uint64_t Seed,
                       double (*F)(const double *), double Noise = 0.0) {
  Rng R(Seed);
  GbtDataset Data;
  Data.NumFeatures = Features;
  std::vector<double> Row(Features);
  for (size_t I = 0; I < Samples; ++I) {
    for (double &V : Row)
      V = R.nextDouble() * 4.0 - 2.0;
    Data.add(Row.data(), F(Row.data()) + Noise * R.nextGaussian());
  }
  return Data;
}

double linearFn(const double *X) { return 3.0 * X[0] - 2.0 * X[1] + 1.0; }
double quadraticFn(const double *X) { return X[0] * X[0] + X[1]; }
double interactionFn(const double *X) { return X[0] > 0 ? X[1] : -X[1]; }

} // namespace

TEST(Gbt, FitsLinearFunction) {
  GbtDataset Data = makeDataset(400, 3, 1, linearFn);
  GbtModel Model = GbtModel::fit(Data, GbtParams());
  EXPECT_LT(Model.mse(Data), 0.05);
}

TEST(Gbt, FitsQuadraticFunction) {
  GbtDataset Data = makeDataset(500, 2, 2, quadraticFn);
  GbtModel Model = GbtModel::fit(Data, GbtParams());
  EXPECT_LT(Model.mse(Data), 0.05);
}

TEST(Gbt, FitsNonAdditiveInteraction) {
  // Requires depth >= 2 splits; a linear model cannot express this.
  GbtDataset Data = makeDataset(600, 2, 3, interactionFn);
  GbtModel Model = GbtModel::fit(Data, GbtParams());
  EXPECT_LT(Model.mse(Data), 0.1);
}

TEST(Gbt, GeneralizesToHeldOutData) {
  GbtDataset Train = makeDataset(600, 2, 4, quadraticFn, 0.05);
  GbtDataset Test = makeDataset(200, 2, 5, quadraticFn, 0.0);
  GbtModel Model = GbtModel::fit(Train, GbtParams());
  EXPECT_LT(Model.mse(Test), 0.15);
}

TEST(Gbt, MoreTreesReduceTrainingError) {
  GbtDataset Data = makeDataset(300, 2, 6, quadraticFn);
  GbtParams Few;
  Few.NumTrees = 5;
  GbtParams Many;
  Many.NumTrees = 120;
  EXPECT_GT(GbtModel::fit(Data, Few).mse(Data),
            GbtModel::fit(Data, Many).mse(Data));
}

TEST(Gbt, DeterministicGivenSeed) {
  GbtDataset Data = makeDataset(200, 2, 7, linearFn, 0.1);
  GbtModel A = GbtModel::fit(Data, GbtParams());
  GbtModel B = GbtModel::fit(Data, GbtParams());
  EXPECT_EQ(A.serialize(), B.serialize());
}

TEST(Gbt, ConstantTargetPredictsConstant) {
  GbtDataset Data;
  Data.NumFeatures = 1;
  for (int I = 0; I < 50; ++I) {
    double X = I;
    Data.add(&X, 5.0);
  }
  GbtModel Model = GbtModel::fit(Data, GbtParams());
  double Probe = 3.5;
  EXPECT_NEAR(Model.predict(&Probe), 5.0, 1e-6);
}

TEST(Gbt, MinSamplesLeafLimitsTreeGrowth) {
  GbtDataset Data = makeDataset(40, 1, 8, linearFn);
  GbtParams Params;
  Params.MinSamplesLeaf = 20;
  Params.NumTrees = 3;
  GbtModel Model = GbtModel::fit(Data, Params);
  // With 40 samples and a 20-sample floor, each tree has at most 1 split.
  EXPECT_LE(Model.numTrees(), 3u);
}

TEST(Gbt, SerializeDeserializeRoundTripExact) {
  GbtDataset Data = makeDataset(300, 3, 9, quadraticFn, 0.1);
  GbtModel Model = GbtModel::fit(Data, GbtParams());
  auto Restored = GbtModel::deserialize(Model.serialize());
  ASSERT_TRUE(Restored.has_value());
  Rng R(10);
  for (int I = 0; I < 50; ++I) {
    double Probe[3] = {R.nextDouble() * 4 - 2, R.nextDouble() * 4 - 2,
                       R.nextDouble() * 4 - 2};
    EXPECT_DOUBLE_EQ(Model.predict(Probe), Restored->predict(Probe));
  }
  EXPECT_EQ(Restored->numFeatures(), 3u);
  EXPECT_EQ(Restored->numTrees(), Model.numTrees());
}

TEST(Gbt, DeserializeRejectsGarbage) {
  EXPECT_FALSE(GbtModel::deserialize("not a model").has_value());
  EXPECT_FALSE(GbtModel::deserialize("").has_value());
  EXPECT_FALSE(GbtModel::deserialize("gbt 3 0x1p0 0x0p0 1\ntree 1\n")
                   .has_value()); // Truncated node list.
}

TEST(Gbt, SubsampleBelowOneStillFits) {
  GbtDataset Data = makeDataset(500, 2, 11, linearFn);
  GbtParams Params;
  Params.Subsample = 0.5;
  GbtModel Model = GbtModel::fit(Data, Params);
  EXPECT_LT(Model.mse(Data), 0.2);
}

TEST(Gbt, FeatureImportanceIdentifiesDrivingFeature) {
  // y depends only on feature 0; importance must concentrate there.
  GbtDataset Data = makeDataset(400, 3, 20, [](const double *X) {
    return X[0] * X[0] * 3.0;
  });
  GbtModel Model = GbtModel::fit(Data, GbtParams());
  std::vector<double> Importance = Model.featureImportance();
  ASSERT_EQ(Importance.size(), 3u);
  // Deep trees spend some splits on noise; the driving feature must still
  // dominate clearly.
  EXPECT_GT(Importance[0], 0.5);
  EXPECT_GT(Importance[0], 3.0 * Importance[1]);
  EXPECT_GT(Importance[0], 3.0 * Importance[2]);
  double Sum = Importance[0] + Importance[1] + Importance[2];
  EXPECT_NEAR(Sum, 1.0, 1e-9);
}

TEST(Gbt, FeatureImportanceEmptyForStumplessModel) {
  GbtDataset Data;
  Data.NumFeatures = 2;
  for (int I = 0; I < 20; ++I) {
    double Row[2] = {0.0, 0.0}; // No valid split thresholds exist.
    Data.add(Row, 1.0);
  }
  GbtModel Model = GbtModel::fit(Data, GbtParams());
  std::vector<double> Importance = Model.featureImportance();
  for (double V : Importance)
    EXPECT_EQ(V, 0.0);
}
