//===- IntegrationTests.cpp - Cross-module end-to-end properties ------------===//

#include "granii/Granii.h"
#include "ir/Dsl.h"
#include "graph/Generators.h"
#include "graph/Sampling.h"
#include "models/Baselines.h"

#include <gtest/gtest.h>

#include <set>

using namespace granii;

namespace {

const CostModel &analyticH100() {
  static AnalyticCostModel Model{HardwareModel::byName("h100")};
  return Model;
}

/// Total 100-iteration time of a plan on the simulated H100.
double simulatedTotal(const CompositionPlan &Plan, const LayerParams &Params,
                      bool Training, int Iterations = 100) {
  Executor Exec(HardwareModel::byName("h100"));
  ExecResult R = Training
                     ? Exec.runTraining(Plan, Params.inputs(), Params.Stats)
                     : Exec.run(Plan, Params.inputs(), Params.Stats);
  return R.totalSeconds(Iterations, Training);
}

} // namespace

TEST(Integration, GraniiNeverMuchWorseThanBaselineUnderAnalyticCosts) {
  // With the analytic cost model driving both the simulator and the
  // selection, GRANII's pick can never lose badly to a framework default:
  // the default is (modulo hoisting) in the candidate set.
  std::vector<Graph> Graphs = {makeMycielskian(8),
                               makeRoadLattice(20, 20, 0.0, 1),
                               makeRmat(800, 12000, 0.55, 0.2, 0.15, 9)};
  OptimizerOptions Opts;
  Opts.Hw = HardwareModel::byName("h100");
  for (ModelKind Kind : allModels()) {
    GnnModel M = makeModel(Kind);
    Optimizer Opt(M, Opts, &analyticH100());
    for (const Graph &G : Graphs) {
      for (auto [KIn, KOut] : {std::pair<int, int>{16, 64}, {64, 16}}) {
        if (Kind == ModelKind::GAT && KIn >= KOut)
          continue; // Paper evaluates GAT only on increasing sizes.
        LayerParams Params = makeLayerParams(M, G, KIn, KOut, 11);
        Selection Sel = Opt.select(G, KIn, KOut);
        double GraniiTime = simulatedTotal(Opt.promoted()[Sel.PlanIndex],
                                           Params, /*Training=*/false);
        for (BaselineSystem Sys : allSystems()) {
          CompositionPlan Base = baselinePlan(Sys, M, KIn, KOut);
          double BaseTime = simulatedTotal(Base, Params, false);
          EXPECT_LT(GraniiTime, BaseTime * 1.15)
              << M.Name << " on " << G.name() << " vs " << systemName(Sys);
        }
      }
    }
  }
}

TEST(Integration, WiseGraphGcnOnDenseGraphLosesBadlyOnA100) {
  // The paper's headline A100 result: WiseGraph's binned normalization
  // collapses on dense graphs; GRANII sidesteps it.
  GnnModel M = makeModel(ModelKind::GCN);
  Graph Dense = makeMycielskian(10);
  LayerParams Params = makeLayerParams(M, Dense, 32, 32, 13);
  Executor Sim(HardwareModel::byName("a100"));

  CompositionPlan Wise = baselinePlan(BaselineSystem::WiseGraph, M, 32, 32);
  OptimizerOptions Opts;
  Opts.Hw = HardwareModel::byName("a100");
  AnalyticCostModel Cost{HardwareModel::byName("a100")};
  Optimizer Opt(M, Opts, &Cost);
  Selection Sel = Opt.select(Dense, 32, 32);

  double WiseTime = Sim.run(Wise, Params.inputs(), Params.Stats)
                        .totalSeconds(100, false);
  double GraniiTime =
      Sim.run(Opt.promoted()[Sel.PlanIndex], Params.inputs(), Params.Stats)
          .totalSeconds(100, false);
  EXPECT_GT(WiseTime / GraniiTime, 3.0);
}

TEST(Integration, TrainingSpeedupTrailsInference) {
  // The unoptimized backward pass dilutes training speedups (paper VI-C).
  GnnModel M = makeModel(ModelKind::GCN);
  Graph Dense = makeMycielskian(9);
  LayerParams Params = makeLayerParams(M, Dense, 32, 32, 17);
  CompositionPlan Wise = baselinePlan(BaselineSystem::WiseGraph, M, 32, 32);
  OptimizerOptions Opts;
  Opts.Hw = HardwareModel::byName("a100");
  AnalyticCostModel Cost{HardwareModel::byName("a100")};
  Optimizer Opt(M, Opts, &Cost);
  Selection Sel = Opt.select(Dense, 32, 32);
  const CompositionPlan &Chosen = Opt.promoted()[Sel.PlanIndex];

  Executor Sim(HardwareModel::byName("a100"));
  auto Time = [&](const CompositionPlan &P, bool Training) {
    ExecResult R = Training
                       ? Sim.runTraining(P, Params.inputs(), Params.Stats)
                       : Sim.run(P, Params.inputs(), Params.Stats);
    return R.totalSeconds(100, Training);
  };
  double InferSpeedup = Time(Wise, false) / Time(Chosen, false);
  double TrainSpeedup = Time(Wise, true) / Time(Chosen, true);
  EXPECT_GT(InferSpeedup, 1.0);
  EXPECT_GT(TrainSpeedup, 1.0);
  EXPECT_LT(TrainSpeedup, InferSpeedup);
}

TEST(Integration, MultiLayerChainingKeepsShapes) {
  // Two stacked GCN layers: layer 1 output feeds layer 2 features; GRANII
  // decides per layer (paper §VI-F).
  GnnModel M = makeModel(ModelKind::GCN);
  Graph G = makeErdosRenyi(150, 900, 19);
  OptimizerOptions Opts;
  Opts.Hw = HardwareModel::byName("cpu");
  AnalyticCostModel Cost{HardwareModel::byName("cpu")};
  Optimizer Opt(M, Opts, &Cost);

  LayerParams L1 = makeLayerParams(M, G, 24, 16, 23);
  Selection Sel1 = Opt.select(G, 24, 16);
  ExecResult R1 = Opt.execute(Sel1, L1, false);

  LayerParams L2 = makeLayerParams(M, G, 16, 8, 24);
  L2.Features = R1.Output;
  Selection Sel2 = Opt.select(G, 16, 8);
  ExecResult R2 = Opt.execute(Sel2, L2, false);
  EXPECT_EQ(R2.Output.rows(), 150);
  EXPECT_EQ(R2.Output.cols(), 8);
}

TEST(Integration, SampledSubgraphExecutionMatchesDirectExecution) {
  // Running a model on an induced subgraph equals running it on that
  // subgraph built as a standalone graph.
  Graph G = makeRmat(500, 6000, 0.5, 0.2, 0.2, 29);
  SampledGraph S = sampleNeighborhood(G, 60, 8, 2, 7);
  GnnModel M = makeModel(ModelKind::GCN);
  LayerParams Params = makeLayerParams(M, S.Sampled, 12, 12, 31);
  Executor Exec(HardwareModel::byName("cpu"));
  auto Plans = enumerateCompositions(M.Root);
  DenseMatrix Ref = Exec.run(Plans[0], Params.inputs(), Params.Stats).Output;
  for (size_t I = 1; I < Plans.size(); ++I)
    EXPECT_TRUE(Exec.run(Plans[I], Params.inputs(), Params.Stats)
                    .Output.approxEquals(Ref, 2e-3f, 2e-3f));
}

TEST(Integration, HardwareChangesOptimalChoice) {
  // Paper §VI-C1 "Difference Across Hardware": as dense throughput grows
  // (CPU -> A100 -> H100), selections for the same input can differ.
  GnnModel M = makeModel(ModelKind::GCN);
  Graph G = makeRmat(5000, 15000, 0.5, 0.2, 0.2, 37); // Low degree.
  bool AnyFlip = false;
  for (auto [KIn, KOut] :
       {std::pair<int, int>{32, 32}, {256, 256}, {32, 256}, {256, 32}}) {
    std::set<size_t> PerSetting;
    for (const char *Hw : {"cpu", "a100", "h100"}) {
      OptimizerOptions Opts;
      Opts.Hw = HardwareModel::byName(Hw);
      AnalyticCostModel Cost{Opts.Hw};
      Optimizer Opt(M, Opts, &Cost);
      PerSetting.insert(Opt.select(G, KIn, KOut).PlanIndex);
    }
    AnyFlip |= PerSetting.size() > 1;
  }
  EXPECT_TRUE(AnyFlip);
}

TEST(Integration, EndToEndDslToExecution) {
  // A custom user model written directly in the DSL goes through the whole
  // pipeline: parse -> enumerate -> prune -> select -> execute.
  const char *Source = R"(model Custom {
    input graph A;
    input features H;
    param weight W;
    d = inv_sqrt_degree(A);
    h = aggregate(A, row_scale(d, H));
    output relu(matmul(h, W));
  })";
  std::string Error;
  auto Parsed = parseModelDsl(Source, &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;

  GnnModel M;
  M.Kind = ModelKind::GCN; // Closest family; only metadata.
  M.Name = Parsed->Name;
  M.Root = Parsed->Root;
  M.WeightCount = 1;

  Graph G = makeCommunityGraph(20, 10, 0.6, 100, 41);
  OptimizerOptions Opts;
  Opts.Hw = HardwareModel::byName("cpu");
  AnalyticCostModel Cost{Opts.Hw};
  Optimizer Opt(M, Opts, &Cost);
  EXPECT_GE(Opt.promoted().size(), 1u);
  LayerParams Params = makeLayerParams(M, G, 8, 4, 43);
  Selection Sel = Opt.select(G, 8, 4);
  ExecResult R = Opt.execute(Sel, Params, false);
  EXPECT_EQ(R.Output.cols(), 4);
}
