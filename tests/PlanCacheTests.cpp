//===- PlanCacheTests.cpp - Tests for the serving plan cache ----------------===//

#include "serve/PlanCache.h"

#include "assoc/Enumerate.h"
#include "assoc/PlanSerialize.h"
#include "assoc/Prune.h"
#include "models/Models.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

using namespace granii;
using namespace granii::serve;

namespace {

PlanCache::Plans somePlans() {
  static PlanCache::Plans Cached =
      std::make_shared<const std::vector<CompositionPlan>>(
          pruneCompositions(
              enumerateCompositions(makeModel(ModelKind::GCN).Root)));
  return Cached;
}

PlanCacheKey keyNumbered(uint64_t N) {
  PlanCacheKey Key;
  Key.ModelHash = 0x1000 + N;
  Key.GraphHash = 0x2000 + N;
  Key.KIn = 32;
  Key.KOut = 64;
  Key.Threads = 4;
  Key.Isa = "avx2";
  return Key;
}

std::string uniqueTempDir(const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "granii-plancache-" + Tag + "-" +
                    std::to_string(::getpid());
  return Dir;
}

} // namespace

TEST(PlanCacheKey, CanonicalEncodesEveryField) {
  PlanCacheKey Key = keyNumbered(1);
  std::string C = Key.canonical();
  // Every field participates: perturbing any one of them changes the key.
  for (auto Mutate : {+[](PlanCacheKey &K) { K.ModelHash ^= 1; },
                      +[](PlanCacheKey &K) { K.GraphHash ^= 1; },
                      +[](PlanCacheKey &K) { K.KIn = 33; },
                      +[](PlanCacheKey &K) { K.KOut = 65; },
                      +[](PlanCacheKey &K) { K.Threads = 5; },
                      +[](PlanCacheKey &K) { K.Isa = "scalar"; },
                      +[](PlanCacheKey &K) { K.Format = "ell"; },
                      +[](PlanCacheKey &K) { K.Shards = 4; }}) {
    PlanCacheKey Other = keyNumbered(1);
    Mutate(Other);
    EXPECT_NE(Other.canonical(), C);
    EXPECT_FALSE(Other == Key);
  }
  EXPECT_EQ(keyNumbered(1).canonical(), C);
  EXPECT_EQ(keyNumbered(1).fileHash(), Key.fileHash());
}

// Regression: before the format dimension joined the key, a daemon serving
// `--format=ell` after a CSR compile of the same (model, graph, k, threads,
// isa) tuple would hand back the cached CSR plan set. The format must be a
// distinct trailing key segment so the two populations never alias.
TEST(PlanCacheKey, FormatIsPartOfTheKey) {
  PlanCacheKey Csr = keyNumbered(1); // Format defaults to "csr"
  PlanCacheKey Ell = keyNumbered(1);
  Ell.Format = "ell";
  EXPECT_TRUE(Csr.canonical().ends_with("/csr/sh0"));
  EXPECT_TRUE(Ell.canonical().ends_with("/ell/sh0"));
  EXPECT_NE(Csr.canonical(), Ell.canonical());
  // An empty format (a request from an older client) aliases to csr rather
  // than minting a third population.
  PlanCacheKey Legacy = keyNumbered(1);
  Legacy.Format.clear();
  EXPECT_EQ(Legacy.canonical(), Csr.canonical());

  PlanCache Cache(4);
  Cache.put(Csr, somePlans());
  EXPECT_EQ(Cache.get(Ell), nullptr) << "ell request served the CSR entry";
  auto EllPlans = std::make_shared<const std::vector<CompositionPlan>>(
      std::vector<CompositionPlan>(somePlans()->begin(),
                                   somePlans()->begin() + 1));
  Cache.put(Ell, EllPlans);
  ASSERT_NE(Cache.get(Csr), nullptr);
  ASSERT_NE(Cache.get(Ell), nullptr);
  EXPECT_NE(Cache.get(Csr)->size(), Cache.get(Ell)->size());
}

// A sharded configuration selects under shard-annotated cost features, so
// its compiled set must never be served to (or from) the whole-graph
// population of the same tuple.
TEST(PlanCacheKey, ShardCountIsPartOfTheKey) {
  PlanCacheKey Whole = keyNumbered(1); // Shards defaults to 0
  PlanCacheKey Sharded = keyNumbered(1);
  Sharded.Shards = 4;
  EXPECT_TRUE(Sharded.canonical().ends_with("/sh4"));
  EXPECT_NE(Whole.canonical(), Sharded.canonical());

  PlanCache Cache(4);
  Cache.put(Whole, somePlans());
  EXPECT_EQ(Cache.get(Sharded), nullptr)
      << "sharded request served the whole-graph entry";
}

TEST(PlanCache, MissThenHitAndCounters) {
  PlanCache Cache(4);
  PlanCacheKey Key = keyNumbered(0);
  EXPECT_EQ(Cache.get(Key), nullptr);
  Cache.put(Key, somePlans());
  bool DiskHit = true;
  PlanCache::Plans Got = Cache.get(Key, &DiskHit);
  ASSERT_NE(Got, nullptr);
  EXPECT_FALSE(DiskHit);
  EXPECT_EQ(Got->size(), somePlans()->size());
  PlanCacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.DiskHits, 0u);
  EXPECT_EQ(S.Spills, 0u); // no spill dir configured
}

TEST(PlanCache, EvictsLeastRecentlyUsedInOrder) {
  PlanCache Cache(3);
  for (uint64_t I = 0; I < 3; ++I)
    Cache.put(keyNumbered(I), somePlans());
  // MRU -> LRU is insertion-reversed: 2, 1, 0.
  std::vector<std::string> Want = {keyNumbered(2).canonical(),
                                   keyNumbered(1).canonical(),
                                   keyNumbered(0).canonical()};
  EXPECT_EQ(Cache.keysMruToLru(), Want);

  // Touching key 0 promotes it to the front...
  ASSERT_NE(Cache.get(keyNumbered(0)), nullptr);
  Want = {keyNumbered(0).canonical(), keyNumbered(2).canonical(),
          keyNumbered(1).canonical()};
  EXPECT_EQ(Cache.keysMruToLru(), Want);

  // ...so inserting a fourth entry evicts key 1, not key 0.
  Cache.put(keyNumbered(3), somePlans());
  Want = {keyNumbered(3).canonical(), keyNumbered(0).canonical(),
          keyNumbered(2).canonical()};
  EXPECT_EQ(Cache.keysMruToLru(), Want);
  EXPECT_EQ(Cache.get(keyNumbered(1)), nullptr);
  EXPECT_EQ(Cache.size(), 3u);
  EXPECT_EQ(Cache.stats().Evictions, 1u);
}

TEST(PlanCache, RePutRefreshesRecencyWithoutGrowing) {
  PlanCache Cache(2);
  Cache.put(keyNumbered(0), somePlans());
  Cache.put(keyNumbered(1), somePlans());
  Cache.put(keyNumbered(0), somePlans()); // refresh, not duplicate
  EXPECT_EQ(Cache.size(), 2u);
  std::vector<std::string> Want = {keyNumbered(0).canonical(),
                                   keyNumbered(1).canonical()};
  EXPECT_EQ(Cache.keysMruToLru(), Want);
  EXPECT_EQ(Cache.stats().Evictions, 0u);
}

TEST(PlanCache, EvictedEntryReloadsFromSpillFile) {
  std::string Dir = uniqueTempDir("spill");
  PlanCache Cache(1, Dir);
  PlanCacheKey K0 = keyNumbered(0), K1 = keyNumbered(1);
  Cache.put(K0, somePlans());
  Cache.put(K1, somePlans()); // evicts K0 from memory; disk copy remains
  EXPECT_EQ(Cache.stats().Spills, 2u);

  bool DiskHit = false;
  PlanCache::Plans Got = Cache.get(K0, &DiskHit);
  ASSERT_NE(Got, nullptr);
  EXPECT_TRUE(DiskHit);
  EXPECT_EQ(Got->size(), somePlans()->size());
  EXPECT_EQ((*Got)[0].canonicalKey(), (*somePlans())[0].canonicalKey());
  PlanCacheStats S = Cache.stats();
  EXPECT_EQ(S.DiskHits, 1u);
  EXPECT_EQ(S.Corrupt, 0u);
}

TEST(PlanCache, HashCollisionInSpillFileIsAMissNotAWrongAnswer) {
  std::string Dir = uniqueTempDir("collision");
  PlanCache Cache(4, Dir);
  PlanCacheKey Key = keyNumbered(0);

  // Simulate a 64-bit file-name collision: a valid spill file sitting at
  // Key's path but embedding a DIFFERENT canonical key.
  PlanCacheKey Other = keyNumbered(7);
  std::string Path = Cache.spillPathFor(Key);
  ASSERT_FALSE(Path.empty());
  {
    std::filesystem::create_directories(Dir);
    std::ofstream Out(Path);
    Out << "granii-plan-cache-v1 " << Other.canonical() << "\n"
        << serializePlans(*somePlans());
  }
  EXPECT_EQ(Cache.get(Key), nullptr);
  PlanCacheStats S = Cache.stats();
  EXPECT_EQ(S.Corrupt, 1u);
  EXPECT_EQ(S.Misses, 1u);
  // The imposter file was removed, so the key can be cached cleanly now.
  EXPECT_FALSE(std::filesystem::exists(Path));
  Cache.put(Key, somePlans());
  std::ifstream Check(Path);
  std::string Header, Embedded;
  Check >> Header >> Embedded;
  EXPECT_EQ(Embedded, Key.canonical());
}

TEST(PlanCache, CorruptSpillFileIsDeletedAndTreatedAsMiss) {
  std::string Dir = uniqueTempDir("corrupt");
  PlanCache Cache(1, Dir);
  PlanCacheKey K0 = keyNumbered(0);
  Cache.put(K0, somePlans());
  Cache.put(keyNumbered(1), somePlans()); // push K0 out of memory

  // Truncate the spill body mid-record.
  std::string Path = Cache.spillPathFor(K0);
  {
    std::ifstream In(Path);
    std::stringstream Buf;
    Buf << In.rdbuf();
    std::string Text = Buf.str();
    ASSERT_GT(Text.size(), 40u);
    std::ofstream Out(Path, std::ios::trunc);
    Out << Text.substr(0, Text.size() / 2);
  }
  EXPECT_EQ(Cache.get(K0), nullptr);
  EXPECT_EQ(Cache.stats().Corrupt, 1u);
  EXPECT_FALSE(std::filesystem::exists(Path));

  // Recovery: recompile-and-put works and the new spill file round-trips.
  Cache.put(K0, somePlans());
  Cache.put(keyNumbered(2), somePlans());
  bool DiskHit = false;
  EXPECT_NE(Cache.get(K0, &DiskHit), nullptr);
  EXPECT_TRUE(DiskHit);
}

TEST(PlanCache, GarbageHeaderIsRejected) {
  std::string Dir = uniqueTempDir("header");
  PlanCache Cache(2, Dir);
  PlanCacheKey Key = keyNumbered(3);
  std::string Path = Cache.spillPathFor(Key);
  std::filesystem::create_directories(Dir);
  {
    std::ofstream Out(Path);
    Out << "not-a-plan-cache-file at all\n";
  }
  EXPECT_EQ(Cache.get(Key), nullptr);
  EXPECT_EQ(Cache.stats().Corrupt, 1u);
  EXPECT_FALSE(std::filesystem::exists(Path));
}

TEST(PlanCache, SharedValueSurvivesEviction) {
  PlanCache Cache(1);
  Cache.put(keyNumbered(0), somePlans());
  PlanCache::Plans Held = Cache.get(keyNumbered(0));
  ASSERT_NE(Held, nullptr);
  Cache.put(keyNumbered(1), somePlans()); // evicts entry 0
  // A session still holding the shared_ptr keeps using it safely.
  EXPECT_EQ(Held->size(), somePlans()->size());
  EXPECT_FALSE((*Held)[0].Name.empty());
}
