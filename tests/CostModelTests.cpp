//===- CostModelTests.cpp - Tests for featurizer, cost models, trainer ------===//

#include "cost/CostModel.h"
#include "cost/Gbt.h"
#include "cost/Trainer.h"
#include "graph/Generators.h"
#include "support/Rng.h"
#include "models/Models.h"
#include "assoc/Enumerate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

using namespace granii;

namespace {

std::vector<Graph> tinySuite() {
  return {makeErdosRenyi(200, 800, 1), makeRmat(256, 1200, 0.55, 0.2, 0.15, 2),
          makeRoadLattice(12, 12, 0.0, 3), makeStar(150),
          makeCommunityGraph(12, 8, 0.7, 60, 4), makeMycielskian(7),
          makeErdosRenyi(300, 3000, 5), makeRing(250)};
}

} // namespace

TEST(Featurizer, VectorShapeAndNames) {
  EXPECT_EQ(costFeatureNames().size(), NumCostFeatures);
  GraphStats Stats = makeStar(100).stats();
  PrimitiveDesc Desc{PrimitiveKind::SpMMWeighted, 100, 32, 0, 198};
  FeatureVector F = featurize(Desc, Stats);
  EXPECT_NEAR(F[0], std::log1p(100.0), 1e-12);   // log nodes
  EXPECT_NEAR(F[11], std::log1p(198.0), 1e-12);  // log nnz
  EXPECT_GT(F[5], 0.0);                          // star has degree CV
}

TEST(Featurizer, DistinguishesGraphShapes) {
  PrimitiveDesc Desc{PrimitiveKind::SpMMWeighted, 100, 32, 0, 400};
  FeatureVector Star = featurize(Desc, makeStar(100).stats());
  FeatureVector Ring = featurize(Desc, makeRing(100).stats());
  EXPECT_NE(Star[5], Ring[5]);
  EXPECT_NE(Star[6], Ring[6]);
}

TEST(AnalyticCostModel, MatchesHardwareEstimate) {
  HardwareModel Hw = HardwareModel::byName("a100");
  AnalyticCostModel Model(Hw);
  GraphStats Stats = makeRing(500).stats();
  PrimitiveDesc Desc{PrimitiveKind::Gemm, 500, 64, 64, 0};
  EXPECT_DOUBLE_EQ(Model.primitiveSeconds(Desc, Stats),
                   Hw.estimateSeconds(Desc, &Stats));
}

TEST(CostModel, PlanSecondsAmortizesSetup) {
  GnnModel M = makeModel(ModelKind::GCN);
  auto Plans = enumerateCompositions(M.Root);
  AnalyticCostModel Model(HardwareModel::byName("h100"));
  GraphStats Stats = makeMycielskian(8).stats();
  DimBinding B{Stats.NumNodes, 64, 64, Stats.NumEdges};
  for (const CompositionPlan &P : Plans) {
    double One = Model.planSeconds(P, B, Stats, 1);
    double Ten = Model.planSeconds(P, B, Stats, 10);
    EXPECT_GT(Ten, One);
    EXPECT_LT(Ten, 10.0 * One + 1e-9);
  }
}

TEST(LearnedCostModel, FallsBackWithoutModels) {
  HardwareModel Hw = HardwareModel::byName("h100");
  LearnedCostModel Learned(Hw);
  AnalyticCostModel Analytic(Hw);
  GraphStats Stats = makeRing(100).stats();
  PrimitiveDesc Desc{PrimitiveKind::Gemm, 100, 8, 8, 0};
  EXPECT_DOUBLE_EQ(Learned.primitiveSeconds(Desc, Stats),
                   Analytic.primitiveSeconds(Desc, Stats));
}

TEST(Trainer, CollectsSamplesForEveryKind) {
  HardwareModel Hw = HardwareModel::byName("h100"); // Simulated: fast.
  auto Samples = collectProfileData(Hw, tinySuite(), {8, 16});
  EXPECT_GT(Samples.size(), 100u);
  std::map<PrimitiveKind, size_t> Counts;
  for (const ProfileSample &S : Samples)
    ++Counts[S.Kind];
  for (PrimitiveKind Kind : allPrimitiveKinds())
    EXPECT_GT(Counts[Kind], 0u) << primitiveName(Kind);
  for (const ProfileSample &S : Samples)
    EXPECT_GT(S.Seconds, 0.0);
}

TEST(Trainer, MeasuredCpuSamplesArePositive) {
  HardwareModel Hw = HardwareModel::byName("cpu");
  auto Samples =
      collectProfileData(Hw, {makeErdosRenyi(150, 600, 9)}, {8});
  EXPECT_GT(Samples.size(), 10u);
  for (const ProfileSample &S : Samples)
    EXPECT_GT(S.Seconds, 0.0);
}

TEST(Trainer, FlopBudgetSkipsHugeMeasuredKernels) {
  HardwareModel Hw = HardwareModel::byName("cpu");
  auto Samples = collectProfileData(Hw, {makeErdosRenyi(400, 2000, 10)},
                                    {64}, /*MaxFlops=*/1.0);
  // Every kernel on this graph exceeds one FLOP, so everything is skipped.
  EXPECT_TRUE(Samples.empty());
}

TEST(Trainer, LearnedModelTracksSimulatedTimes) {
  HardwareModel Hw = HardwareModel::byName("a100");
  auto Samples = collectProfileData(Hw, tinySuite(), {8, 16, 32});
  TrainReport Report;
  LearnedCostModel Model = trainCostModel(Hw, Samples, GbtParams(), &Report);
  EXPECT_GT(Model.modelCount(), 8u);
  EXPECT_EQ(Report.SampleCount, Samples.size());

  // Predictions should be within ~2x of the analytic ground truth for the
  // bulk kinds (log-RMSE below log(2)).
  ASSERT_TRUE(Report.TrainRmse.count(PrimitiveKind::SpMMWeighted));
  EXPECT_LT(Report.TrainRmse[PrimitiveKind::SpMMWeighted], 0.7);
  EXPECT_LT(Report.TrainRmse[PrimitiveKind::Gemm], 0.7);
}

TEST(Trainer, LearnedPreservesRelativeOrderOfBigVsSmall) {
  HardwareModel Hw = HardwareModel::byName("h100");
  auto Samples = collectProfileData(Hw, tinySuite(), {8, 16, 32});
  LearnedCostModel Model = trainCostModel(Hw, Samples);
  GraphStats Stats = makeErdosRenyi(250, 1500, 6).stats();
  PrimitiveDesc Small{PrimitiveKind::Gemm, 250, 8, 8, 0};
  PrimitiveDesc Large{PrimitiveKind::Gemm, 250, 32, 32, 0};
  EXPECT_LT(Model.primitiveSeconds(Small, Stats),
            Model.primitiveSeconds(Large, Stats));
}

TEST(LearnedCostModel, SerializeRoundTrip) {
  HardwareModel Hw = HardwareModel::byName("h100");
  auto Samples = collectProfileData(Hw, tinySuite(), {8, 16});
  LearnedCostModel Model = trainCostModel(Hw, Samples);
  auto Restored = LearnedCostModel::deserialize(Model.serialize(), Hw);
  ASSERT_TRUE(Restored.has_value());
  EXPECT_EQ(Restored->modelCount(), Model.modelCount());
  GraphStats Stats = makeRing(300).stats();
  PrimitiveDesc Desc{PrimitiveKind::SpMMWeighted, 300, 16, 0, 600};
  EXPECT_DOUBLE_EQ(Restored->primitiveSeconds(Desc, Stats),
                   Model.primitiveSeconds(Desc, Stats));
}

TEST(LearnedCostModel, DeserializeRejectsMalformed) {
  HardwareModel Hw = HardwareModel::byName("cpu");
  EXPECT_FALSE(LearnedCostModel::deserialize("model gemm\njunk\nend\n", Hw)
                   .has_value());
  EXPECT_FALSE(
      LearnedCostModel::deserialize("bogus header\n", Hw).has_value());
  EXPECT_FALSE(LearnedCostModel::deserialize(
                   "model nosuchkind\ngbt 1 0x1p0 0x0p0 0\nend\n", Hw)
                   .has_value());
}

TEST(LearnedCostModel, LoadOrTrainUsesCache) {
  HardwareModel Hw = HardwareModel::byName("h100");
  std::string Path = ::testing::TempDir() + "/granii_costmodel_cache.txt";
  std::remove(Path.c_str());
  LearnedCostModel First =
      loadOrTrainCostModel(Path, Hw, tinySuite(), {8, 16});
  EXPECT_GT(First.modelCount(), 0u);
  // Second call must load the cache and agree exactly.
  LearnedCostModel Second =
      loadOrTrainCostModel(Path, Hw, {/*no graphs needed*/}, {8});
  EXPECT_EQ(Second.modelCount(), First.modelCount());
  GraphStats Stats = makeRing(123).stats();
  PrimitiveDesc Desc{PrimitiveKind::RowBroadcast, 123, 16, 0, 0};
  EXPECT_DOUBLE_EQ(First.primitiveSeconds(Desc, Stats),
                   Second.primitiveSeconds(Desc, Stats));
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Per-format cost features (golden values on hand-computed fixtures)
//===----------------------------------------------------------------------===//

// A ring is perfectly regular: every row has exactly 2 entries, so the ELL
// layout has no padding (fill ratio 1) and the row-length variance is 0.
TEST(Featurizer, FormatFeaturesOnRegularRing) {
  GraphStats Stats = makeRing(8).stats();
  ASSERT_DOUBLE_EQ(Stats.MaxDegree, 2.0);
  ASSERT_EQ(Stats.NumEdges, 16);
  PrimitiveDesc Desc{PrimitiveKind::SpMMWeighted, 8, 4, 0, 16};
  FeatureVector F = featurize(Desc, Stats);
  EXPECT_DOUBLE_EQ(F[16], 1.0); // nnz / (nodes * maxdeg) = 16 / (8*2)
  EXPECT_DOUBLE_EQ(F[17], 0.0); // log1p(variance of constant degrees)
  EXPECT_DOUBLE_EQ(F[18], 0.0); // Desc.Format defaults to CSR (= 0)
}

// star(5): degrees are [4, 1, 1, 1, 1] -> 8 directed edges, max degree 4.
// ELL fill = 8 / (5*4) = 0.4; mean degree 1.6, variance
// ((4-1.6)^2 + 4*(1-1.6)^2)/5 = 1.44.
TEST(Featurizer, FormatFeaturesOnSkewedStar) {
  GraphStats Stats = makeStar(5).stats();
  ASSERT_DOUBLE_EQ(Stats.MaxDegree, 4.0);
  ASSERT_EQ(Stats.NumEdges, 8);
  PrimitiveDesc Desc{PrimitiveKind::SpMMWeighted, 5, 4, 0, 8};
  Desc.Format = SparseFormat::Hyb;
  FeatureVector F = featurize(Desc, Stats);
  EXPECT_NEAR(F[16], 0.4, 1e-12);
  EXPECT_NEAR(F[17], std::log1p(1.44), 1e-9);
  EXPECT_DOUBLE_EQ(F[18], static_cast<double>(SparseFormat::Hyb));
}

TEST(Featurizer, FormatChangesTheVector) {
  GraphStats Stats = makeStar(50).stats();
  PrimitiveDesc Csr{PrimitiveKind::SpMMWeighted, 50, 16, 0, 98};
  PrimitiveDesc Ell = Csr;
  Ell.Format = SparseFormat::Ell;
  EXPECT_NE(featurize(Csr, Stats), featurize(Ell, Stats));
}

// The analytic per-format factor must penalize ELL on skewed inputs (heavy
// padding) while leaving regular inputs close to parity, and must keep the
// baseline formats at exactly 1.
TEST(HardwareModel, FormatCostFactorTracksPadding) {
  GraphStats Ring = makeRing(64).stats();
  GraphStats Star = makeStar(64).stats();
  EXPECT_DOUBLE_EQ(sparseFormatCostFactor(SparseFormat::Csr, Star), 1.0);
  EXPECT_DOUBLE_EQ(sparseFormatCostFactor(SparseFormat::Csc, Star), 1.0);
  // Regular ring: padding ratio 1, ELL is allowed to win slightly.
  EXPECT_LT(sparseFormatCostFactor(SparseFormat::Ell, Ring), 1.0);
  // Skewed star: ELL pays the full padded width, SELL only per slice.
  EXPECT_GT(sparseFormatCostFactor(SparseFormat::Ell, Star), 1.5);
  EXPECT_LT(sparseFormatCostFactor(SparseFormat::Sell, Star),
            sparseFormatCostFactor(SparseFormat::Ell, Star));
  // And the estimate itself applies the factor for sparse primitives.
  HardwareModel Hw = HardwareModel::byName("cpu");
  PrimitiveDesc Desc{PrimitiveKind::SpMMWeighted, 64, 32, 0,
                     Star.NumEdges};
  PrimitiveDesc DescEll = Desc;
  DescEll.Format = SparseFormat::Ell;
  EXPECT_GT(Hw.estimateSeconds(DescEll, &Star),
            Hw.estimateSeconds(Desc, &Star));
}

// A cost-model cache written before the featurizer grew to NumCostFeatures
// carries ensembles trained on the old width; loadOrTrainCostModel must
// reject it and retrain rather than feed the trees misaligned vectors.
TEST(Trainer, StaleFeatureWidthCacheIsRejected) {
  HardwareModel Hw = HardwareModel::byName("h100");
  std::string Path = ::testing::TempDir() + "/granii_stale_cache.txt";
  std::remove(Path.c_str());

  // Simulate the pre-format era: a valid cache whose models were trained
  // on 16-wide feature vectors.
  GbtDataset Old;
  Old.NumFeatures = NumCostFeatures - 3;
  Rng R(9);
  std::vector<double> Row(Old.NumFeatures);
  for (int I = 0; I < 64; ++I) {
    for (double &V : Row)
      V = R.nextDouble();
    Old.add(Row.data(), Row[0] + 0.5 * Row[1]);
  }
  GbtModel Stale = GbtModel::fit(Old, GbtParams());
  ASSERT_EQ(Stale.numFeatures(), NumCostFeatures - 3);
  LearnedCostModel Seeded(Hw);
  Seeded.setModel(PrimitiveKind::SpMMWeighted, Stale);
  ASSERT_TRUE(Seeded.saveToFile(Path));

  // Enough graphs that SpMMWeighted clears the trainer's 8-sample floor
  // (one sample per graph per width) and gets an ensemble again.
  std::vector<Graph> Suite;
  for (int64_t I = 0; I < 12; ++I)
    Suite.push_back(makeErdosRenyi(100 + 10 * I, 400 + 40 * I,
                                   static_cast<uint64_t>(I + 1)));
  LearnedCostModel Fresh = loadOrTrainCostModel(Path, Hw, Suite, {8});
  ASSERT_TRUE(Fresh.hasModel(PrimitiveKind::SpMMWeighted));
  EXPECT_EQ(Fresh.model(PrimitiveKind::SpMMWeighted)->numFeatures(),
            NumCostFeatures)
      << "stale cache was served instead of being retrained";
  std::remove(Path.c_str());
}
