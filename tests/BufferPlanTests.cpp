//===- BufferPlanTests.cpp - Buffer lifetime planning and arena execution ---===//
//
// Hand-computed lifetime/slot/byte fixtures for BufferPlan, plus the
// executor-level properties the planning exists for: arena outputs bitwise
// identical to the legacy per-call path at every thread count, and zero
// workspace allocations in the steady state.
//
//===----------------------------------------------------------------------===//

#include "assoc/Enumerate.h"
#include "graph/Generators.h"
#include "granii/Granii.h"
#include "models/Models.h"
#include "runtime/BufferPlan.h"
#include "runtime/Executor.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace granii;

namespace {

PlanValue denseInput(const char *Name, LeafRole Role, SymDim Rows,
                     SymDim Cols) {
  PlanValue V;
  V.Kind = PlanValueKind::Dense;
  V.Shape = {Rows, Cols};
  V.DebugName = Name;
  V.InputRole = Role;
  return V;
}

PlanValue sparseInput(const char *Name) {
  PlanValue V;
  V.Kind = PlanValueKind::Sparse;
  V.Shape = {SymDim::n(), SymDim::n()};
  V.DebugName = Name;
  V.InputRole = LeafRole::Adjacency;
  return V;
}

PlanValue denseTemp(const char *Name, SymDim Rows, SymDim Cols) {
  PlanValue V;
  V.Kind = PlanValueKind::Dense;
  V.Shape = {Rows, Cols};
  V.DebugName = Name;
  return V;
}

/// N=10, KIn=4, KOut=3, E=20: dense N x KOut temporaries hold 30 floats
/// (120 B), which makes the expected byte totals easy to hand-compute.
DimBinding testBinding() {
  DimBinding B;
  B.N = 10;
  B.KIn = 4;
  B.KOut = 3;
  B.E = 20;
  return B;
}

/// v3 = H * W; v4 = A @ v3; v5 = relu(v4)  (output v5).
CompositionPlan gcnLikePlan() {
  CompositionPlan P;
  P.Name = "gcn-like";
  P.Values = {sparseInput("A"),
              denseInput("H", LeafRole::Features, SymDim::n(), SymDim::kIn()),
              denseInput("W", LeafRole::Weight, SymDim::kIn(), SymDim::kOut()),
              denseTemp("t", SymDim::n(), SymDim::kOut()),
              denseTemp("agg", SymDim::n(), SymDim::kOut()),
              denseTemp("out", SymDim::n(), SymDim::kOut())};
  P.Steps = {{StepOp::Gemm, {1, 2}, 3},
             {StepOp::SpmmUnweighted, {0, 3}, 4},
             {StepOp::Relu, {4}, 5}};
  P.OutputValue = 5;
  P.verify();
  return P;
}

/// v3 = H * W; v4 = relu(v3); v5 = relu(v4); v6 = relu(v5)  (output v6).
/// Long enough for a freed slot to be reused mid-chain.
CompositionPlan reluChainPlan() {
  CompositionPlan P;
  P.Name = "relu-chain";
  P.Values = {sparseInput("A"),
              denseInput("H", LeafRole::Features, SymDim::n(), SymDim::kIn()),
              denseInput("W", LeafRole::Weight, SymDim::kIn(), SymDim::kOut()),
              denseTemp("t0", SymDim::n(), SymDim::kOut()),
              denseTemp("t1", SymDim::n(), SymDim::kOut()),
              denseTemp("t2", SymDim::n(), SymDim::kOut()),
              denseTemp("out", SymDim::n(), SymDim::kOut())};
  P.Steps = {{StepOp::Gemm, {1, 2}, 3},
             {StepOp::Relu, {3}, 4},
             {StepOp::Relu, {4}, 5},
             {StepOp::Relu, {5}, 6}};
  P.OutputValue = 6;
  P.verify();
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// Lifetime analysis fixtures
//===----------------------------------------------------------------------===//

TEST(BufferPlan, LifetimesAndBytesOfGcnLikePlan) {
  CompositionPlan P = gcnLikePlan();
  BufferPlan BP(P, testBinding(), /*Training=*/false);

  for (int In : {0, 1, 2})
    EXPECT_EQ(BP.values()[In].Class, BufferClass::InputAlias);

  const ValueBuffer &T = BP.values()[3];
  EXPECT_EQ(T.DefStep, 0);
  EXPECT_EQ(T.LastUse, 1);
  EXPECT_EQ(T.Floats, 30);
  EXPECT_FALSE(T.Pinned);

  const ValueBuffer &Agg = BP.values()[4];
  EXPECT_EQ(Agg.DefStep, 1);
  EXPECT_EQ(Agg.LastUse, 2);

  // The output is read after execution: sentinel last use one past the
  // final step, and a pinned dedicated slot.
  const ValueBuffer &Out = BP.values()[5];
  EXPECT_EQ(Out.DefStep, 2);
  EXPECT_EQ(Out.LastUse, 3);
  EXPECT_TRUE(Out.Pinned);
  ASSERT_GE(Out.Slot, 0);
  EXPECT_TRUE(BP.slots()[static_cast<size_t>(Out.Slot)].Pinned);

  // Worst step holds two 30-float temporaries: 240 B. All three resident
  // at once (the per-call baseline) is 360 B. No interval here admits
  // sharing, so the arena also holds three 120 B slots.
  EXPECT_EQ(BP.peakBytes(), 240u);
  EXPECT_EQ(BP.naiveBytes(), 360u);
  EXPECT_EQ(BP.arenaBytes(), 360u);
  EXPECT_LE(BP.peakBytes(), BP.naiveBytes());
}

TEST(BufferPlan, FreedSlotIsReused) {
  CompositionPlan P = reluChainPlan();
  BufferPlan BP(P, testBinding(), /*Training=*/false);

  // t0 dies after step 1, so t2 (defined at step 2) takes its slot; only
  // the output needs a third (pinned) slot despite four produced values.
  EXPECT_EQ(BP.values()[5].Slot, BP.values()[3].Slot);
  EXPECT_NE(BP.values()[4].Slot, BP.values()[3].Slot);
  EXPECT_EQ(BP.slots().size(), 3u);

  EXPECT_EQ(BP.peakBytes(), 240u);  // two live 30-float values at worst
  EXPECT_EQ(BP.naiveBytes(), 480u); // four produced values
  EXPECT_EQ(BP.arenaBytes(), 360u); // three 120 B slots
}

TEST(BufferPlan, TrainingModePinsEverything) {
  CompositionPlan P = reluChainPlan();
  BufferPlan BP(P, testBinding(), /*Training=*/true);

  EXPECT_TRUE(BP.training());
  for (int V : {3, 4, 5, 6}) {
    EXPECT_TRUE(BP.values()[V].Pinned) << "v" << V;
    EXPECT_TRUE(BP.slots()[static_cast<size_t>(BP.values()[V].Slot)].Pinned);
  }
  // Saved activations forbid sharing: one slot per value, peak == naive.
  EXPECT_EQ(BP.slots().size(), 4u);
  EXPECT_NE(BP.values()[5].Slot, BP.values()[3].Slot);
  EXPECT_EQ(BP.peakBytes(), BP.naiveBytes());
  EXPECT_EQ(BP.arenaBytes(), 480u);
}

TEST(BufferPlan, NeverReadValueDiesAtDefinition) {
  CompositionPlan P = gcnLikePlan();
  // Append a dead step: v6 = relu(v3), never read (output stays v5).
  P.Values.push_back(denseTemp("dead", SymDim::n(), SymDim::kOut()));
  P.Steps.push_back({StepOp::Relu, {3}, 6});
  P.verify();
  BufferPlan BP(P, testBinding(), /*Training=*/false);
  EXPECT_EQ(BP.values()[6].DefStep, 3);
  EXPECT_EQ(BP.values()[6].LastUse, 3);
  // Its definition extends v3's lifetime to step 3.
  EXPECT_EQ(BP.values()[3].LastUse, 3);
}

TEST(BufferPlan, SetupResultsAndSparseValuesArePinned) {
  // v2 = degree(A) [setup]; v3 = inv_sqrt(v2) [setup];
  // v4 = scale_both(v3, A, v3) [setup, sparse]; v5 = A' @ H  (output).
  CompositionPlan P;
  P.Name = "setup-sparse";
  PlanValue Deg;
  Deg.Kind = PlanValueKind::Diag;
  Deg.Shape = {SymDim::n(), SymDim::one()};
  Deg.DebugName = "deg";
  Deg.GraphOnly = true;
  PlanValue Norm = Deg;
  Norm.DebugName = "dnorm";
  PlanValue Ahat;
  Ahat.Kind = PlanValueKind::Sparse;
  Ahat.Shape = {SymDim::n(), SymDim::n()};
  Ahat.SparseWeighted = true;
  Ahat.DebugName = "Ahat";
  Ahat.GraphOnly = true;
  P.Values = {sparseInput("A"),
              denseInput("H", LeafRole::Features, SymDim::n(), SymDim::kIn()),
              Deg, Norm, Ahat,
              denseTemp("out", SymDim::n(), SymDim::kIn())};
  P.Steps = {{StepOp::DegreeOffsets, {0}, 2, 0.0, /*Setup=*/true},
             {StepOp::InvSqrtVec, {2}, 3, 0.0, /*Setup=*/true},
             {StepOp::SddmmScaleBoth, {3, 0, 3}, 4, 0.0, /*Setup=*/true},
             {StepOp::SpmmWeighted, {4, 1}, 5}};
  P.OutputValue = 5;
  P.verify();

  BufferPlan BP(P, testBinding(), /*Training=*/false);
  EXPECT_TRUE(BP.values()[2].Pinned); // setup result
  EXPECT_TRUE(BP.values()[3].Pinned);
  EXPECT_EQ(BP.values()[2].Class, BufferClass::VecSlot);

  // Sparse value: per-edge array sized E, dedicated storage, no slot.
  const ValueBuffer &Sp = BP.values()[4];
  EXPECT_EQ(Sp.Class, BufferClass::SparseVals);
  EXPECT_TRUE(Sp.Pinned);
  EXPECT_EQ(Sp.Slot, -1);
  EXPECT_EQ(Sp.Floats, 20);

  // toString carries the lifetime listing used when debugging plans.
  std::string Listing = BP.toString(P);
  EXPECT_NE(Listing.find("Ahat: sparse 20 floats"), std::string::npos);
  EXPECT_NE(Listing.find("pinned"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Arena execution: bitwise equivalence, zero allocations, step profiles
//===----------------------------------------------------------------------===//

namespace {

/// Degree-skewed R-MAT graph: the adversarial case for any scheme whose
/// output could depend on work partitioning.
const Graph &skewedGraph() {
  static Graph G = makeRmat(500, 4000, 0.6, 0.2, 0.1, 9);
  return G;
}

} // namespace

TEST(PlanWorkspaceExec, ArenaMatchesLegacyBitwise) {
  GnnModel M = makeModel(ModelKind::GCN);
  LayerParams Params = makeLayerParams(M, skewedGraph(), 16, 8, 5);
  Executor Exec(HardwareModel::byName("cpu"));
  auto Plans = enumerateCompositions(M.Root);
  ASSERT_FALSE(Plans.empty());

  for (int Threads : {1, 4}) {
    ThreadPool::get().setNumThreads(Threads);
    for (size_t I = 0; I < Plans.size(); ++I) {
      DenseMatrix Legacy =
          Exec.run(Plans[I], Params.inputs(), Params.Stats).Output;
      PlanWorkspace Ws;
      ExecResult R;
      Exec.run(Plans[I], Params.inputs(), Params.Stats, Ws, R);
      ASSERT_EQ(R.Output.rows(), Legacy.rows());
      EXPECT_EQ(R.Output.maxAbsDiff(Legacy), 0.0f)
          << "plan " << I << " at " << Threads << " threads";
      // And again from the warm workspace: reuse must not perturb results.
      Exec.run(Plans[I], Params.inputs(), Params.Stats, Ws, R);
      EXPECT_EQ(R.Output.maxAbsDiff(Legacy), 0.0f)
          << "plan " << I << " rerun at " << Threads << " threads";
    }
  }
  ThreadPool::get().setNumThreads(0);
}

TEST(PlanWorkspaceExec, TrainingArenaMatchesLegacy) {
  GnnModel M = makeModel(ModelKind::GCN);
  LayerParams Params = makeLayerParams(M, skewedGraph(), 12, 6, 7);
  Executor Exec(HardwareModel::byName("cpu"));
  auto Plans = enumerateCompositions(M.Root);
  ASSERT_FALSE(Plans.empty());

  ExecResult Legacy = Exec.runTraining(Plans[0], Params.inputs(), Params.Stats);
  PlanWorkspace Ws;
  ExecResult R;
  Exec.runTraining(Plans[0], Params.inputs(), Params.Stats, Ws, R);
  EXPECT_EQ(R.Output.maxAbsDiff(Legacy.Output), 0.0f);
  ASSERT_EQ(R.WeightGrads.size(), Legacy.WeightGrads.size());
  for (const auto &[Name, Grad] : Legacy.WeightGrads) {
    ASSERT_TRUE(R.WeightGrads.count(Name));
    EXPECT_EQ(R.WeightGrads.at(Name).maxAbsDiff(Grad), 0.0f) << Name;
  }
  EXPECT_EQ(R.FeatureGrad.maxAbsDiff(Legacy.FeatureGrad), 0.0f);
}

TEST(PlanWorkspaceExec, SteadyStatePerformsZeroAllocations) {
  GnnModel M = makeModel(ModelKind::GCN);
  LayerParams Params = makeLayerParams(M, skewedGraph(), 16, 8, 5);
  Executor Exec(HardwareModel::byName("cpu"));
  auto Plans = enumerateCompositions(M.Root);
  ASSERT_FALSE(Plans.empty());

  for (size_t I = 0; I < Plans.size(); ++I) {
    PlanWorkspace Ws;
    ExecResult R;
    Exec.run(Plans[I], Params.inputs(), Params.Stats, Ws, R); // warm-up
    Ws.resetAllocationCount();
    for (int Rep = 0; Rep < 3; ++Rep)
      Exec.run(Plans[I], Params.inputs(), Params.Stats, Ws, R);
    EXPECT_EQ(Ws.allocationCount(), 0u) << "plan " << I;
  }
}

TEST(PlanWorkspaceExec, StepProfilesFilledWhenEnabled) {
  GnnModel M = makeModel(ModelKind::GCN);
  LayerParams Params = makeLayerParams(M, skewedGraph(), 16, 8, 5);
  Executor Exec(HardwareModel::byName("cpu"));
  auto Plans = enumerateCompositions(M.Root);
  ASSERT_FALSE(Plans.empty());
  const CompositionPlan &Plan = Plans[0];

  PlanWorkspace Ws;
  ExecResult R;
  Exec.run(Plan, Params.inputs(), Params.Stats, Ws, R);
  EXPECT_TRUE(R.StepProfiles.empty()); // profiling off by default

  Exec.setStepProfiling(true);
  Exec.run(Plan, Params.inputs(), Params.Stats, Ws, R);
  ASSERT_EQ(R.StepProfiles.size(), Plan.Steps.size());
  for (size_t S = 0; S < R.StepProfiles.size(); ++S) {
    const StepProfile &P = R.StepProfiles[S];
    EXPECT_FALSE(P.Op.empty()) << S;
    EXPECT_FALSE(P.Value.empty()) << S;
    EXPECT_FALSE(P.Shape.empty()) << S;
    EXPECT_EQ(P.Op, stepOpName(Plan.Steps[S].Op));
    EXPECT_EQ(P.Setup, Plan.Steps[S].Setup);
    EXPECT_GT(P.Bytes, 0.0) << S;
    EXPECT_GE(P.Seconds, 0.0) << S;
  }

  // Switching profiling back off clears the records on the next run.
  Exec.setStepProfiling(false);
  Exec.run(Plan, Params.inputs(), Params.Stats, Ws, R);
  EXPECT_TRUE(R.StepProfiles.empty());
}

TEST(PlanWorkspaceExec, OptimizerReusesWorkspaceAcrossExecutes) {
  GnnModel M = makeModel(ModelKind::GCN);
  OptimizerOptions Opts;
  Opts.Hw = HardwareModel::byName("cpu");
  AnalyticCostModel Cost(Opts.Hw);
  Optimizer Opt(M, Opts, &Cost);
  LayerParams Params = makeLayerParams(M, skewedGraph(), 16, 8, 5);

  Selection Sel = Opt.select(skewedGraph(), 16, 8);
  ExecResult First = Opt.execute(Sel, Params, /*Training=*/false);
  ExecResult Second = Opt.execute(Sel, Params, /*Training=*/false);
  EXPECT_EQ(Second.Output.maxAbsDiff(First.Output), 0.0f);
}
