//===- ReorderTests.cpp - Tests for locality-aware graph reordering ---------===//
//
// Golden-file tests on hand-computed tiny graphs plus the structural
// invariants every permutation must satisfy: perm ∘ inv = identity,
// PAP^T preserves the pattern up to relabeling, dense row (inverse-)
// permutation round-trips, and RCM does not worsen bandwidth on the
// fixed-seed random inputs below.
//
//===----------------------------------------------------------------------===//

#include "graph/Reorder.h"

#include "graph/Generators.h"
#include "graph/Graph.h"
#include "hw/HardwareModel.h"
#include "kernels/Kernels.h"
#include "support/Rng.h"
#include "tensor/CooMatrix.h"
#include "tensor/DenseMatrix.h"

#include <gtest/gtest.h>

using namespace granii;

namespace {

/// Unweighted symmetric CSR from an undirected edge list.
CsrMatrix makeCsr(int64_t N, std::initializer_list<std::pair<int, int>> Edges) {
  CooMatrix Coo(N, N);
  for (auto [U, V] : Edges)
    Coo.addSymmetric(U, V);
  return Coo.toCsr(/*Unweighted=*/true);
}

} // namespace

//===----------------------------------------------------------------------===//
// Permutation
//===----------------------------------------------------------------------===//

TEST(Permutation, IdentityAndInverse) {
  Permutation Id = Permutation::identity(5);
  EXPECT_TRUE(Id.isIdentity());
  EXPECT_EQ(Id.size(), 5);

  Permutation P(std::vector<int32_t>{2, 0, 3, 1});
  EXPECT_FALSE(P.isIdentity());
  EXPECT_EQ(P.newToOld(0), 2);
  EXPECT_EQ(P.oldToNew(2), 0);
  Permutation Inv = P.inverse();
  EXPECT_EQ(Inv.newToOldOrder(), P.oldToNewOrder());
  EXPECT_EQ(Inv.oldToNewOrder(), P.newToOldOrder());
  for (int64_t I = 0; I < P.size(); ++I) {
    EXPECT_EQ(P.oldToNew(P.newToOld(I)), I); // perm ∘ inv = identity
    EXPECT_EQ(Inv.oldToNew(Inv.newToOld(I)), I);
  }
}

TEST(Permutation, RandomComposeWithInverseIsIdentity) {
  Graph G = makeRmat(200, 800, 0.5, 0.2, 0.2, /*Seed=*/7);
  for (ReorderPolicy Policy : {ReorderPolicy::Rcm, ReorderPolicy::Degree}) {
    Permutation P = makeReorderPermutation(Policy, G.adjacency());
    Permutation Inv = P.inverse();
    for (int64_t I = 0; I < P.size(); ++I) {
      EXPECT_EQ(Inv.oldToNew(P.oldToNew(I)), I);
      EXPECT_EQ(P.oldToNew(Inv.oldToNew(I)), I);
    }
  }
}

//===----------------------------------------------------------------------===//
// Golden orders on hand-computed graphs
//===----------------------------------------------------------------------===//

TEST(Reorder, RcmGoldenScrambledPath) {
  // The path 0-2-3-1 (a relabeled 4-path). RCM roots at the minimum-degree
  // vertex with the smallest id (0), BFS gives [0, 2, 3, 1], and the
  // reversal yields:
  CsrMatrix A = makeCsr(4, {{0, 2}, {2, 3}, {3, 1}});
  Permutation P = reverseCuthillMcKee(A);
  EXPECT_EQ(P.newToOldOrder(), (std::vector<int32_t>{1, 3, 2, 0}));
  // A path relabeled consecutively has bandwidth 1 (optimal).
  EXPECT_EQ(bandwidthOf(permuteSymmetric(A, P)), 1);
  EXPECT_LT(bandwidthOf(permuteSymmetric(A, P)), bandwidthOf(A));
}

TEST(Reorder, RcmGoldenTwoComponents) {
  // Components {0,3} (edge) and {1,2,4} (path 1-4-2). Min-degree root 0
  // finishes its component ([0, 3]), then root 1 BFSes [1, 4, 2];
  // concatenated [0, 3, 1, 4, 2] and reversed:
  CsrMatrix A = makeCsr(5, {{0, 3}, {1, 4}, {4, 2}});
  Permutation P = reverseCuthillMcKee(A);
  EXPECT_EQ(P.newToOldOrder(), (std::vector<int32_t>{2, 4, 1, 3, 0}));
}

TEST(Reorder, DegreeGoldenOrder) {
  // Degrees: 0 -> 3, 1 -> 1, 2 -> 2, 3 -> 2. Descending with id
  // tie-break: [0, 2, 3, 1].
  CsrMatrix A = makeCsr(4, {{0, 1}, {0, 2}, {0, 3}, {2, 3}});
  Permutation P = degreeDescending(A);
  EXPECT_EQ(P.newToOldOrder(), (std::vector<int32_t>{0, 2, 3, 1}));
}

TEST(Reorder, PolicyNamesRoundTrip) {
  for (ReorderPolicy Policy : allReorderPolicies())
    EXPECT_EQ(parseReorderPolicy(reorderPolicyName(Policy)), Policy);
  EXPECT_FALSE(parseReorderPolicy("cuthill").has_value());
  EXPECT_FALSE(parseReorderPolicy("").has_value());
}

//===----------------------------------------------------------------------===//
// permuteSymmetric
//===----------------------------------------------------------------------===//

TEST(Reorder, PermuteSymmetricRelabelsPattern) {
  Graph G = makeRmat(150, 600, 0.55, 0.2, 0.15, /*Seed=*/11);
  const CsrMatrix &A = G.adjacency();
  Permutation P = reverseCuthillMcKee(A);
  CsrMatrix B = permuteSymmetric(A, P);
  B.verify();
  ASSERT_EQ(B.nnz(), A.nnz());
  // Entry-level golden check through dense copies: B[n1][n2] must equal
  // A[old(n1)][old(n2)].
  DenseMatrix Ad = A.toDense(), Bd = B.toDense();
  for (int64_t R = 0; R < B.rows(); ++R)
    for (int64_t C = 0; C < B.cols(); ++C)
      EXPECT_EQ(Bd.at(R, C), Ad.at(P.newToOld(R), P.newToOld(C)));
  // Symmetry is preserved, and the inverse permutation restores A exactly.
  CsrMatrix T = B.transposed();
  EXPECT_EQ(T.rowOffsets(), B.rowOffsets());
  EXPECT_EQ(T.colIndices(), B.colIndices());
  CsrMatrix Back = permuteSymmetric(B, P.inverse());
  EXPECT_EQ(Back.rowOffsets(), A.rowOffsets());
  EXPECT_EQ(Back.colIndices(), A.colIndices());
}

TEST(Reorder, PermuteSymmetricCarriesWeights) {
  CsrMatrix A = makeCsr(4, {{0, 2}, {2, 3}, {3, 1}});
  std::vector<float> Vals(static_cast<size_t>(A.nnz()));
  for (size_t I = 0; I < Vals.size(); ++I)
    Vals[I] = static_cast<float>(I + 1);
  A.setValues(std::move(Vals));
  Permutation P = reverseCuthillMcKee(A);
  CsrMatrix B = permuteSymmetric(A, P);
  B.verify();
  ASSERT_TRUE(B.isWeighted());
  DenseMatrix Ad = A.toDense(), Bd = B.toDense();
  for (int64_t R = 0; R < 4; ++R)
    for (int64_t C = 0; C < 4; ++C)
      EXPECT_EQ(Bd.at(R, C), Ad.at(P.newToOld(R), P.newToOld(C)));
}

//===----------------------------------------------------------------------===//
// Dense row permutation
//===----------------------------------------------------------------------===//

TEST(Reorder, DenseRowPermuteRoundTrips) {
  Rng Generator(5);
  DenseMatrix H(9, 4);
  H.fillRandom(Generator);
  Permutation P(std::vector<int32_t>{3, 1, 4, 0, 2, 8, 7, 5, 6});
  DenseMatrix Gathered(9, 4), Back(9, 4);
  permuteRowsInto(H, P, Gathered);
  for (int64_t R = 0; R < 9; ++R)
    for (int64_t C = 0; C < 4; ++C)
      EXPECT_EQ(Gathered.at(R, C), H.at(P.newToOld(R), C));
  inversePermuteRowsInto(Gathered, P, Back);
  EXPECT_EQ(Back.maxAbsDiff(H), 0.0f);
}

//===----------------------------------------------------------------------===//
// Locality metrics
//===----------------------------------------------------------------------===//

TEST(Reorder, BandwidthAndSpanOfRing) {
  Graph G = makeRing(10);
  // Ring rows span their two neighbors; the wrap-around edge dominates
  // bandwidth.
  EXPECT_EQ(bandwidthOf(G.adjacency()), 9);
  EXPECT_GT(averageRowSpan(G.adjacency()), 2.0);
  EXPECT_EQ(bandwidthOf(CsrMatrix()), 0);
  EXPECT_EQ(averageRowSpan(CsrMatrix()), 0.0);
}

TEST(Reorder, RcmDoesNotWorsenBandwidthOnRandomGraphs) {
  // Heuristic, so asserted on fixed seeds (verified to hold for these).
  for (uint64_t Seed : {21, 22, 23, 24, 25}) {
    Graph G = makeRmat(300, 1500, 0.5, 0.2, 0.2, Seed);
    CsrMatrix R = permuteSymmetric(G.adjacency(),
                                   reverseCuthillMcKee(G.adjacency()));
    EXPECT_LE(bandwidthOf(R), bandwidthOf(G.adjacency())) << Seed;
  }
  for (uint64_t Seed : {31, 32, 33}) {
    Graph G = makeErdosRenyi(400, 1200, Seed);
    CsrMatrix R = permuteSymmetric(G.adjacency(),
                                   reverseCuthillMcKee(G.adjacency()));
    EXPECT_LE(bandwidthOf(R), bandwidthOf(G.adjacency())) << Seed;
  }
  // On a lattice (already banded after generation order) RCM should find a
  // strongly banded layout from the scrambled version too.
  Graph Road = makeRoadLattice(20, 20, 0.0, 35);
  CsrMatrix R = permuteSymmetric(Road.adjacency(),
                                 reverseCuthillMcKee(Road.adjacency()));
  EXPECT_LE(bandwidthOf(R), bandwidthOf(Road.adjacency()));
}

TEST(Reorder, DegreeDescendingSortsRowNnz) {
  Graph G = makeRmat(200, 900, 0.6, 0.15, 0.15, /*Seed=*/41);
  CsrMatrix R =
      permuteSymmetric(G.adjacency(), degreeDescending(G.adjacency()));
  for (int64_t Row = 1; Row < R.rows(); ++Row)
    EXPECT_GE(R.rowNnz(Row - 1), R.rowNnz(Row));
}

TEST(Reorder, ReorderGraphRecomputesStatsAndName) {
  Graph G = makeRmat(250, 1000, 0.5, 0.2, 0.2, /*Seed=*/51, "skewed");
  Graph R = reorderGraph(G, ReorderPolicy::Rcm);
  EXPECT_EQ(R.name(), "skewed+rcm");
  EXPECT_EQ(R.numNodes(), G.numNodes());
  EXPECT_EQ(R.numEdges(), G.numEdges());
  EXPECT_DOUBLE_EQ(R.stats().Bandwidth,
                   static_cast<double>(bandwidthOf(R.adjacency())));
  EXPECT_DOUBLE_EQ(R.stats().AvgRowSpan, averageRowSpan(R.adjacency()));
  // Degree distribution is invariant under relabeling.
  EXPECT_DOUBLE_EQ(R.stats().AvgDegree, G.stats().AvgDegree);
  EXPECT_DOUBLE_EQ(R.stats().MaxDegree, G.stats().MaxDegree);
  // None is a plain copy.
  Graph N = reorderGraph(G, ReorderPolicy::None);
  EXPECT_EQ(N.name(), "skewed");
  EXPECT_EQ(N.adjacency().colIndices(), G.adjacency().colIndices());
}

//===----------------------------------------------------------------------===//
// Cache-blocked kernels: tiling must not change a single bit
//===----------------------------------------------------------------------===//

// Column tiling only reorders the OUTER loop over output columns; each
// output element still accumulates its row's neighbors in the same order,
// so tiled and untiled results are bitwise identical at any tile width.
TEST(TiledKernels, SpmmTiledBitwiseMatchesUntiled) {
  Graph G = makeRmat(400, 2400, 0.55, 0.2, 0.15, /*Seed=*/71);
  Rng Generator(72);
  DenseMatrix H(G.numNodes(), 48);
  H.fillRandom(Generator);
  for (const Semiring &S :
       {Semiring::plusCopy(), Semiring::plusTimes(), Semiring::meanCopy()}) {
    CsrMatrix A = G.adjacency();
    if (S.Combine == CombineOpKind::Mul) { // weighted variant needs values
      std::vector<float> Vals(static_cast<size_t>(A.nnz()));
      Rng VR(73);
      for (float &V : Vals)
        V = VR.nextFloat(0.1f, 1.0f);
      A.setValues(std::move(Vals));
    }
    DenseMatrix Ref(G.numNodes(), 48);
    kernels::spmmInto(A, H, S, Ref);
    for (int64_t Tile : {8, 16, 24, 40, 48, 1000}) {
      DenseMatrix Out(G.numNodes(), 48);
      kernels::spmmTiledInto(A, H, S, Tile, Out);
      EXPECT_EQ(Out.maxAbsDiff(Ref), 0.0f) << "tile " << Tile;
    }
  }
}

TEST(TiledKernels, SddmmTiledBitwiseMatchesUntiled) {
  Graph G = makeRmat(300, 1800, 0.5, 0.2, 0.2, /*Seed=*/81);
  Rng Generator(82);
  DenseMatrix U(G.numNodes(), 40), V(G.numNodes(), 40);
  U.fillRandom(Generator);
  V.fillRandom(Generator);
  std::vector<float> Ref(static_cast<size_t>(G.numEdges()));
  std::vector<float> Out(static_cast<size_t>(G.numEdges()));
  kernels::sddmmInto(G.adjacency(), U, V, Semiring::plusTimes(), Ref);
  for (int64_t Tile : {8, 16, 24, 40, 64}) {
    kernels::sddmmTiledInto(G.adjacency(), U, V, Semiring::plusTimes(), Tile,
                            Out);
    ASSERT_EQ(Out.size(), Ref.size());
    for (size_t I = 0; I < Ref.size(); ++I)
      ASSERT_EQ(Out[I], Ref[I]) << "tile " << Tile << " edge " << I;
  }
}

TEST(TiledKernels, ColumnTileRespectsCacheBudgetAndFloor) {
  HardwareModel Cpu = HardwareModel::byName("cpu"); // 1 MB modeled L2
  // Small spans: the whole operand fits, no tiling.
  EXPECT_EQ(Cpu.spmmColumnTile(128, 100.0), 128);
  // Mid spans: a tile that keeps span*tile*4 <= L2/2, multiple of 8.
  int64_t Tile = Cpu.spmmColumnTile(128, 2000.0);
  EXPECT_LT(Tile, 128);
  EXPECT_EQ(Tile % 8, 0);
  EXPECT_LE(2000.0 * static_cast<double>(Tile) * 4.0, 512.0 * 1024.0);
  EXPECT_GE(Tile, 32); // narrower tiles lose to pattern re-traversal
  // Huge spans would need sliver tiles; those run untiled instead.
  EXPECT_EQ(Cpu.spmmColumnTile(128, 50000.0), 128);
  // Narrow operands are never tiled.
  EXPECT_EQ(Cpu.spmmColumnTile(8, 1e9), 8);
}

//===----------------------------------------------------------------------===//
// R-MAT deduplication regression
//===----------------------------------------------------------------------===//

TEST(Generators, RmatDeliversExactDistinctEdgeCount) {
  // Before deduplicating during build, R-MAT counted resampled duplicate
  // edges toward TargetEdges and the CSR merge silently shrank the graph.
  Graph G = makeRmat(512, 4000, 0.55, 0.2, 0.15, /*Seed=*/61);
  EXPECT_EQ(G.numEdges(), 2 * 4000); // exactly TargetEdges, both directions
}

TEST(Generators, RmatColumnsStrictlyIncreasePerRow) {
  Graph G = makeRmat(300, 2500, 0.6, 0.15, 0.15, /*Seed=*/62);
  const CsrMatrix &A = G.adjacency();
  const auto &Offsets = A.rowOffsets();
  const auto &Cols = A.colIndices();
  for (int64_t R = 0; R < A.rows(); ++R)
    for (int64_t K = Offsets[static_cast<size_t>(R)] + 1;
         K < Offsets[static_cast<size_t>(R) + 1]; ++K)
      ASSERT_GT(Cols[static_cast<size_t>(K)], Cols[static_cast<size_t>(K) - 1])
          << "duplicate or unsorted column in row " << R;
}

TEST(Generators, RmatAttemptCapTerminatesNearCompleteRequests) {
  // Asking for more edges than feasible must terminate (the attempt cap),
  // returning a valid graph with as many distinct edges as were drawn.
  Graph G = makeRmat(16, 200, 0.3, 0.2, 0.2, /*Seed=*/63);
  G.adjacency().verify();
  EXPECT_LE(G.numEdges(), 2 * (16 * 15 / 2));
  EXPECT_GT(G.numEdges(), 0);
}
