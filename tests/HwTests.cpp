//===- HwTests.cpp - Tests for the hardware latency models ------------------===//

#include "graph/Generators.h"
#include "hw/HardwareModel.h"

#include <gtest/gtest.h>

using namespace granii;

namespace {

GraphStats denseStats() { return makeMycielskian(9).stats(); }
GraphStats sparseStats() { return makeRoadLattice(24, 24, 0.0, 1).stats(); }

PrimitiveDesc gemmDesc(int64_t N, int64_t K1, int64_t K2) {
  return {PrimitiveKind::Gemm, N, K2, K1, 0};
}

} // namespace

TEST(HardwareModel, ByNameRoundTrip) {
  EXPECT_EQ(HardwareModel::byName("cpu").name(), "cpu");
  EXPECT_EQ(HardwareModel::byName("a100").name(), "a100");
  EXPECT_EQ(HardwareModel::byName("h100").name(), "h100");
  EXPECT_DEATH(HardwareModel::byName("tpu"), "unknown hardware");
}

TEST(HardwareModel, PaperPlatformsOrderAndKinds) {
  std::vector<HardwareModel> Platforms = HardwareModel::paperPlatforms();
  ASSERT_EQ(Platforms.size(), 3u);
  EXPECT_EQ(Platforms[0].name(), "h100");
  EXPECT_TRUE(Platforms[0].isSimulated());
  EXPECT_TRUE(Platforms[1].isSimulated());
  EXPECT_EQ(Platforms[2].name(), "cpu");
  EXPECT_FALSE(Platforms[2].isSimulated());
}

TEST(HardwareModel, EstimatesArePositiveAndFinite) {
  GraphStats Stats = denseStats();
  for (const HardwareModel &Hw : HardwareModel::paperPlatforms())
    for (PrimitiveKind Kind : allPrimitiveKinds()) {
      PrimitiveDesc D{Kind, 1000, 64, 64, 8000};
      double T = Hw.estimateSeconds(D, &Stats);
      EXPECT_GT(T, 0.0) << primitiveName(Kind);
      EXPECT_LT(T, 10.0) << primitiveName(Kind);
    }
}

TEST(HardwareModel, MonotoneInProblemSize) {
  HardwareModel Hw = HardwareModel::byName("h100");
  GraphStats Stats = denseStats();
  EXPECT_LT(Hw.estimateSeconds(gemmDesc(1000, 64, 64), &Stats),
            Hw.estimateSeconds(gemmDesc(4000, 256, 256), &Stats));
}

TEST(HardwareModel, GpusFasterThanCpuOnLargeDenseWork) {
  GraphStats Stats = denseStats();
  PrimitiveDesc Big = gemmDesc(100000, 512, 512);
  double Cpu = HardwareModel::byName("cpu").estimateSeconds(Big, &Stats);
  double A100 = HardwareModel::byName("a100").estimateSeconds(Big, &Stats);
  double H100 = HardwareModel::byName("h100").estimateSeconds(Big, &Stats);
  EXPECT_GT(Cpu, A100);
  EXPECT_GT(A100, H100);
}

TEST(HardwareModel, DenseToSparseRatioImprovesAcrossGenerations) {
  // Paper §VI-C1: dense ops become relatively better from CPU to A100 to
  // H100, shifting optimal compositions.
  GraphStats Stats = denseStats();
  PrimitiveDesc Dense = gemmDesc(50000, 256, 256);
  PrimitiveDesc Sparse{PrimitiveKind::SpMMWeighted, 50000, 256, 0, 5000000};
  auto Ratio = [&](const char *Name) {
    HardwareModel Hw = HardwareModel::byName(Name);
    return Hw.estimateSeconds(Dense, &Stats) /
           Hw.estimateSeconds(Sparse, &Stats);
  };
  EXPECT_GT(Ratio("cpu"), Ratio("a100"));
  EXPECT_GT(Ratio("a100"), Ratio("h100"));
}

TEST(HardwareModel, BinningPenaltyDependsOnDensity) {
  // Atomic contention grows with average degree; A100 suffers most. Uses
  // paper-scale synthetic statistics so kernel time dominates launch cost.
  HardwareModel A100 = HardwareModel::byName("a100");
  GraphStats Dense;
  Dense.NumNodes = 100000;
  Dense.NumEdges = 10000000;
  Dense.AvgDegree = 100.0;
  GraphStats Sparse;
  Sparse.NumNodes = 1000000;
  Sparse.NumEdges = 3000000;
  Sparse.AvgDegree = 3.0;
  PrimitiveDesc BinDense{PrimitiveKind::DegreeBinning, Dense.NumNodes, 0, 0,
                         Dense.NumEdges};
  PrimitiveDesc BinSparse{PrimitiveKind::DegreeBinning, Sparse.NumNodes, 0, 0,
                          Sparse.NumEdges};
  double PerEdgeDense =
      A100.estimateSeconds(BinDense, &Dense) / Dense.NumEdges;
  double PerEdgeSparse =
      A100.estimateSeconds(BinSparse, &Sparse) / Sparse.NumEdges;
  EXPECT_GT(PerEdgeDense, 2.0 * PerEdgeSparse);
}

TEST(HardwareModel, BinningPenaltyA100WorstH100Mild) {
  GraphStats Dense = denseStats();
  PrimitiveDesc Bin{PrimitiveKind::DegreeBinning, Dense.NumNodes, 0, 0,
                    Dense.NumEdges};
  PrimitiveDesc Off{PrimitiveKind::DegreeOffsets, Dense.NumNodes, 0, 0,
                    Dense.NumEdges};
  auto Penalty = [&](const char *Name) {
    HardwareModel Hw = HardwareModel::byName(Name);
    return Hw.estimateSeconds(Bin, &Dense) / Hw.estimateSeconds(Off, &Dense);
  };
  EXPECT_GT(Penalty("a100"), Penalty("h100"));
  EXPECT_GT(Penalty("a100"), Penalty("cpu"));
}

TEST(HardwareModel, IrregularGraphsSlowSparsePrimitives) {
  HardwareModel Hw = HardwareModel::byName("h100");
  GraphStats Skewed = makeStar(5000).stats();
  GraphStats Regular = makeRing(5000).stats();
  PrimitiveDesc Spmm{PrimitiveKind::SpMMWeighted, 5000, 64, 0, 10000};
  EXPECT_GT(Hw.estimateSeconds(Spmm, &Skewed),
            Hw.estimateSeconds(Spmm, &Regular));
}

TEST(HardwareModel, LaunchOverheadFloorsTinyKernels) {
  HardwareModel Hw = HardwareModel::byName("h100");
  GraphStats Stats = sparseStats();
  PrimitiveDesc Tiny = gemmDesc(4, 4, 4);
  EXPECT_GE(Hw.estimateSeconds(Tiny, &Stats), 3e-7);
}
