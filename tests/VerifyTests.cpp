//===- VerifyTests.cpp - Whole-pipeline verifier tests -----------------------===//
//
// Hand-broken fixtures for every stage of the GRANII verifier: each test
// constructs an object that violates exactly one invariant and asserts the
// verifier rejects it with a diagnostic naming the stage and the offending
// node. Clean objects (real models, real buffer plans, real partitions)
// must verify without errors.
//
//===----------------------------------------------------------------------===//

#include "assoc/Enumerate.h"
#include "assoc/Prune.h"
#include "ir/VerifyIR.h"
#include "models/Models.h"
#include "runtime/BufferPlan.h"
#include "support/ThreadPool.h"
#include "verify/Verify.h"
#include "verify/VerifyBuffers.h"
#include "verify/VerifyPlan.h"

#include <gtest/gtest.h>

using namespace granii;

namespace {

/// True when some diagnostic's rendering contains \p Needle.
bool hasDiag(const DiagEngine &Diags, const std::string &Needle) {
  return Diags.render().find(Needle) != std::string::npos;
}

//===----------------------------------------------------------------------===//
// Diagnostic engine
//===----------------------------------------------------------------------===//

TEST(DiagTest, RenderingAndCounts) {
  DiagEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error("ir", "matmul/1:leaf(W)", "dimension mismatch", "fix the DSL");
  Diags.report(DiagSeverity::Warning, "plan", "plan#0/step1", "suspicious");
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.diags().size(), 2u);
  EXPECT_EQ(Diags.diags()[0].toString(),
            "error: [ir] matmul/1:leaf(W): dimension mismatch "
            "(hint: fix the DSL)");
  EXPECT_NE(Diags.render().find("warning: [plan] plan#0/step1: suspicious"),
            std::string::npos);
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.render().empty());
}

TEST(DiagTest, VerifyLevelParsing) {
  EXPECT_EQ(parseVerifyLevel("off"), VerifyLevel::Off);
  EXPECT_EQ(parseVerifyLevel("fast"), VerifyLevel::Fast);
  EXPECT_EQ(parseVerifyLevel("full"), VerifyLevel::Full);
  EXPECT_FALSE(parseVerifyLevel("paranoid").has_value());
  EXPECT_EQ(verifyLevelName(VerifyLevel::Full), "full");
}

//===----------------------------------------------------------------------===//
// IR stage: hand-broken DAGs (node constructors skip the ir:: factories'
// inference, so each fixture breaks exactly the invariant under test)
//===----------------------------------------------------------------------===//

TEST(VerifyIRTest, NullRootIsRejected) {
  DiagEngine Diags;
  EXPECT_FALSE(verifyIRDiags(nullptr, Diags));
  EXPECT_TRUE(hasDiag(Diags, "null IR root"));
  EXPECT_TRUE(hasDiag(Diags, "[ir]"));
}

TEST(VerifyIRTest, MatMulChainMismatchIsRejected) {
  // H (N x K_in) directly times A (N x N): inner dimensions cannot chain.
  IRNodeRef H = ir::featuresLeaf();
  IRNodeRef A = ir::adjacencyLeaf();
  IRNodeRef Bad = std::make_shared<MatMulNode>(
      std::vector<IRNodeRef>{H, A}, SymShape{SymDim::n(), SymDim::n()},
      MatrixAttr::DenseData);
  DiagEngine Diags;
  EXPECT_FALSE(verifyIRDiags(Bad, Diags));
  EXPECT_TRUE(hasDiag(Diags, "matmul chain dimension mismatch between "
                             "operand 0"));
}

TEST(VerifyIRTest, NestedMatMulIsRejected) {
  IRNodeRef A = ir::adjacencyLeaf();
  IRNodeRef H = ir::featuresLeaf();
  IRNodeRef Inner = std::make_shared<MatMulNode>(
      std::vector<IRNodeRef>{A, H}, SymShape{SymDim::n(), SymDim::kIn()},
      MatrixAttr::DenseData);
  IRNodeRef Outer = std::make_shared<MatMulNode>(
      std::vector<IRNodeRef>{A, Inner}, SymShape{SymDim::n(), SymDim::kIn()},
      MatrixAttr::DenseData);
  DiagEngine Diags;
  EXPECT_FALSE(verifyIRDiags(Outer, Diags));
  EXPECT_TRUE(hasDiag(Diags, "nested matmul"));
  // The path pinpoints the offending operand of the outer chain.
  EXPECT_TRUE(hasDiag(Diags, "matmul/1"));
}

TEST(VerifyIRTest, AddShapeMismatchIsRejected) {
  IRNodeRef H = ir::featuresLeaf(); // N x K_in
  IRNodeRef W = ir::weightLeaf();   // K_in x K_out
  IRNodeRef Bad = std::make_shared<AddNode>(
      std::vector<IRNodeRef>{H, W}, H->shape(), MatrixAttr::DenseData);
  DiagEngine Diags;
  EXPECT_FALSE(verifyIRDiags(Bad, Diags));
  EXPECT_TRUE(hasDiag(Diags, "add operand 1 shape"));
}

TEST(VerifyIRTest, BroadcastWithoutDiagonalIsRejected) {
  IRNodeRef H = ir::featuresLeaf();
  IRNodeRef Bad = std::make_shared<RowBroadcastNode>(
      /*Diag=*/H, /*Mat=*/H, H->shape(), MatrixAttr::DenseData);
  DiagEngine Diags;
  EXPECT_FALSE(verifyIRDiags(Bad, Diags));
  EXPECT_TRUE(hasDiag(Diags, "row broadcast requires a diagonal operand"));
}

TEST(VerifyIRTest, RedeclaredLeafNameIsRejected) {
  // Two leaves named "W" with different shapes: the CSE identity breaks.
  IRNodeRef H = ir::featuresLeaf();
  IRNodeRef W1 = ir::weightLeaf("W");
  IRNodeRef W2 = ir::weightLeafWithShape(
      "W", SymShape{SymDim::kOut(), SymDim::kOut()});
  IRNodeRef Root = ir::matMul({H, W1, W2});
  DiagEngine Diags;
  EXPECT_FALSE(verifyIRDiags(Root, Diags));
  EXPECT_TRUE(hasDiag(Diags, "leaf 'W' redeclared"));
}

TEST(VerifyIRTest, StoredAttributeMismatchIsRejected) {
  // A * H is dense data; stamping the node sparse.weighted must be caught
  // by attribute re-propagation.
  IRNodeRef A = ir::adjacencyLeaf();
  IRNodeRef H = ir::featuresLeaf();
  IRNodeRef Bad = std::make_shared<MatMulNode>(
      std::vector<IRNodeRef>{A, H}, SymShape{SymDim::n(), SymDim::kIn()},
      MatrixAttr::SparseWeighted);
  DiagEngine Diags;
  EXPECT_FALSE(verifyIRDiags(Bad, Diags));
  EXPECT_TRUE(hasDiag(Diags, "disagrees with re-propagated"));
}

TEST(VerifyIRTest, BadRewriteOutputNamesThePass) {
  IRNodeRef H = ir::featuresLeaf();
  IRNodeRef A = ir::adjacencyLeaf();
  IRNodeRef Bad = std::make_shared<MatMulNode>(
      std::vector<IRNodeRef>{H, A}, SymShape{SymDim::n(), SymDim::n()},
      MatrixAttr::DenseData);
  DiagEngine Diags;
  EXPECT_FALSE(verifyAfterPass(Bad, "broadcast-to-diag", Diags));
  ASSERT_FALSE(Diags.diags().empty());
  EXPECT_EQ(Diags.diags()[0].Stage, "rewrite:broadcast-to-diag");
}

TEST(VerifyIRTest, EveryModelVerifiesClean) {
  for (ModelKind Kind : extendedModels()) {
    DiagEngine Diags;
    EXPECT_TRUE(verifyIRDiags(makeModel(Kind).Root, Diags))
        << modelName(Kind) << ":\n"
        << Diags.render();
  }
}

//===----------------------------------------------------------------------===//
// Plan stage: hand-built straight-line programs
//===----------------------------------------------------------------------===//

/// A minimal well-formed plan: v2 = gemm(v0, v1); v3 = relu(v2);
/// v4 = v2 + v3; output v4.
CompositionPlan makeTinyPlan() {
  CompositionPlan Plan;
  Plan.Name = "tiny";
  PlanValue H;
  H.Kind = PlanValueKind::Dense;
  H.Shape = {SymDim::n(), SymDim::kIn()};
  H.DebugName = "H";
  H.InputRole = LeafRole::Features;
  PlanValue W;
  W.Kind = PlanValueKind::Dense;
  W.Shape = {SymDim::kIn(), SymDim::kOut()};
  W.DebugName = "W";
  W.InputRole = LeafRole::Weight;
  PlanValue Out;
  Out.Kind = PlanValueKind::Dense;
  Out.Shape = {SymDim::n(), SymDim::kOut()};
  Plan.Values = {H, W, Out, Out, Out};
  Plan.Values[2].DebugName = "HW";
  Plan.Values[3].DebugName = "relu";
  Plan.Values[4].DebugName = "sum";
  Plan.Steps = {{StepOp::Gemm, {0, 1}, 2},
                {StepOp::Relu, {2}, 3},
                {StepOp::AddDense, {2, 3}, 4}};
  Plan.OutputValue = 4;
  return Plan;
}

TEST(VerifyPlanTest, WellFormedPlanIsClean) {
  DiagEngine Diags;
  EXPECT_TRUE(verifyPlanDiags(makeTinyPlan(), Diags)) << Diags.render();
}

TEST(VerifyPlanTest, UseBeforeDefinitionIsRejected) {
  CompositionPlan Plan = makeTinyPlan();
  Plan.Steps[0].Operands = {0, 3}; // v3 defined only by step 1
  DiagEngine Diags;
  EXPECT_FALSE(verifyPlanDiags(Plan, Diags));
  EXPECT_TRUE(hasDiag(Diags, "used before definition"));
  EXPECT_TRUE(hasDiag(Diags, "tiny/step0(gemm)"));
}

TEST(VerifyPlanTest, DoubleDefinitionIsRejected) {
  CompositionPlan Plan = makeTinyPlan();
  Plan.Steps[1].Result = 2; // step 0 already defined v2
  Plan.Steps[2].Operands = {2, 2};
  Plan.OutputValue = 2;
  DiagEngine Diags;
  EXPECT_FALSE(verifyPlanDiags(Plan, Diags));
  EXPECT_TRUE(hasDiag(Diags, "defined twice"));
}

TEST(VerifyPlanTest, WrongOperandKindIsRejected) {
  // An SpMM whose "sparse" operand is the dense feature matrix.
  CompositionPlan Plan = makeTinyPlan();
  Plan.Steps[0].Op = StepOp::SpmmUnweighted;
  DiagEngine Diags;
  EXPECT_FALSE(verifyPlanDiags(Plan, Diags));
  EXPECT_TRUE(hasDiag(Diags, "operand 0 must be sparse, got dense"));
}

TEST(VerifyPlanTest, SpmmVariantMismatchIsRejected) {
  CompositionPlan Plan = makeTinyPlan();
  PlanValue Adj;
  Adj.Kind = PlanValueKind::Sparse;
  Adj.Shape = {SymDim::n(), SymDim::n()};
  Adj.SparseWeighted = false;
  Adj.DebugName = "A";
  Adj.InputRole = LeafRole::Adjacency;
  Adj.GraphOnly = true;
  Plan.Values.push_back(Adj); // v5
  Plan.Values[2].Shape = {SymDim::n(), SymDim::kIn()};
  Plan.Values[3].Shape = Plan.Values[2].Shape;
  Plan.Values[4].Shape = Plan.Values[2].Shape;
  // Weighted SpMM over the unweighted adjacency.
  Plan.Steps[0] = {StepOp::SpmmWeighted, {5, 0}, 2};
  DiagEngine Diags;
  EXPECT_FALSE(verifyPlanDiags(Plan, Diags));
  EXPECT_TRUE(hasDiag(Diags, "spmm variant mismatch"));
}

TEST(VerifyPlanTest, BrokenShapeChainIsRejected) {
  CompositionPlan Plan = makeTinyPlan();
  Plan.Steps[0].Operands = {1, 0}; // W (K_in x K_out) x H (N x K_in)
  DiagEngine Diags;
  EXPECT_FALSE(verifyPlanDiags(Plan, Diags));
  EXPECT_TRUE(hasDiag(Diags, "operand shapes do not chain"));
}

TEST(VerifyPlanTest, SetupDependingOnDataIsRejected) {
  CompositionPlan Plan = makeTinyPlan();
  Plan.Steps[0].Setup = true; // gemm over H and W is not graph-only
  DiagEngine Diags;
  EXPECT_FALSE(verifyPlanDiags(Plan, Diags));
  EXPECT_TRUE(hasDiag(Diags, "setup step depends on a non-graph-only "
                             "operand"));
}

TEST(VerifyPlanTest, EnumeratedPlansAreClean) {
  for (ModelKind Kind : extendedModels()) {
    for (const CompositionPlan &Plan :
         enumerateCompositions(makeModel(Kind).Root)) {
      DiagEngine Diags;
      EXPECT_TRUE(verifyPlanDiags(Plan, Diags))
          << modelName(Kind) << " " << Plan.Name << ":\n"
          << Diags.render();
    }
  }
}

//===----------------------------------------------------------------------===//
// Prune stage: scenario annotations and the survivor-set invariant
//===----------------------------------------------------------------------===//

TEST(VerifyPruneTest, ViableNowhereIsRejected) {
  CompositionPlan Plan = makeTinyPlan();
  Plan.ViableGe = Plan.ViableLt = false;
  DiagEngine Diags;
  EXPECT_FALSE(verifyScenarioAnnotations(Plan, Diags));
  EXPECT_TRUE(hasDiag(Diags, "viable in no embedding-size scenario"));
}

TEST(VerifyPruneTest, PromotedSurvivorsSatisfyTheInvariant) {
  std::vector<CompositionPlan> Promoted =
      pruneCompositions(enumerateCompositions(makeModel(ModelKind::GCN).Root));
  DiagEngine Diags;
  EXPECT_TRUE(verifySurvivorSet(Promoted, Diags)) << Diags.render();
}

TEST(VerifyPruneTest, UnprunedSetViolatesTheInvariant) {
  // Marking every enumerated GCN candidate viable everywhere must trip the
  // re-derived domination rules: pruning exists because most candidates are
  // beaten in at least one scenario.
  std::vector<CompositionPlan> All =
      enumerateCompositions(makeModel(ModelKind::GCN).Root);
  ASSERT_GT(All.size(), 4u);
  for (CompositionPlan &Plan : All)
    Plan.ViableGe = Plan.ViableLt = true;
  DiagEngine Diags;
  EXPECT_FALSE(verifySurvivorSet(All, Diags));
  EXPECT_TRUE(hasDiag(Diags, "dominated by"));
}

TEST(VerifyPruneTest, DuplicateSurvivorIsRejected) {
  std::vector<CompositionPlan> Promoted =
      pruneCompositions(enumerateCompositions(makeModel(ModelKind::GCN).Root));
  ASSERT_FALSE(Promoted.empty());
  Promoted.push_back(Promoted.front()); // identical cost multiset
  DiagEngine Diags;
  EXPECT_FALSE(verifySurvivorSet(Promoted, Diags));
  EXPECT_TRUE(hasDiag(Diags, "cost-duplicate of"));
}

//===----------------------------------------------------------------------===//
// Buffer stage: hand-broken slot assignments
//===----------------------------------------------------------------------===//

DimBinding tinyBinding() {
  DimBinding B;
  B.N = 8;
  B.E = 24;
  B.KIn = 4;
  B.KOut = 3;
  return B;
}

TEST(VerifyBuffersTest, RealPlansAreClean) {
  for (ModelKind Kind : extendedModels()) {
    for (const CompositionPlan &Plan :
         pruneCompositions(enumerateCompositions(makeModel(Kind).Root))) {
      for (bool Training : {false, true}) {
        DiagEngine Diags;
        BufferPlan Buffers(Plan, tinyBinding(), Training);
        EXPECT_TRUE(verifyBufferPlan(Plan, tinyBinding(), Buffers, Diags))
            << modelName(Kind) << " " << Plan.Name
            << (Training ? " (training)" : "") << ":\n"
            << Diags.render();
      }
    }
  }
}

TEST(VerifyBuffersTest, OverlappingLifetimesInOneSlotAreRejected) {
  CompositionPlan Plan = makeTinyPlan();
  BufferPlan Buffers(Plan, tinyBinding(), /*Training=*/false);
  std::vector<ValueBuffer> Vals = Buffers.values();
  std::vector<ArenaSlot> Slots = Buffers.slots();
  // v2 (live through the add at step 2) and v3 (defined at step 1) get
  // distinct slots; forcing them into one slot aliases live values.
  ASSERT_NE(Vals[2].Slot, Vals[3].Slot);
  Vals[3].Slot = Vals[2].Slot;
  DiagEngine Diags;
  EXPECT_FALSE(verifyBufferAssignment(Plan, tinyBinding(), false, Vals, Slots,
                                      Diags));
  EXPECT_TRUE(hasDiag(Diags, "overlapping lifetimes"));
}

TEST(VerifyBuffersTest, StaleLastUseIsRejected) {
  CompositionPlan Plan = makeTinyPlan();
  BufferPlan Buffers(Plan, tinyBinding(), /*Training=*/false);
  std::vector<ValueBuffer> Vals = Buffers.values();
  // v2 is read by the add at step 2; recording an earlier last use frees
  // its slot while the value is still live.
  ASSERT_EQ(Vals[2].LastUse, 2);
  Vals[2].LastUse = 1;
  DiagEngine Diags;
  EXPECT_FALSE(verifyBufferAssignment(Plan, tinyBinding(), false, Vals,
                                      Buffers.slots(), Diags));
  EXPECT_TRUE(hasDiag(Diags, "read until step"));
  EXPECT_TRUE(hasDiag(Diags, "freed early"));
}

TEST(VerifyBuffersTest, WrongPayloadSizeIsRejected) {
  CompositionPlan Plan = makeTinyPlan();
  BufferPlan Buffers(Plan, tinyBinding(), /*Training=*/false);
  std::vector<ValueBuffer> Vals = Buffers.values();
  Vals[2].Floats /= 2;
  DiagEngine Diags;
  EXPECT_FALSE(verifyBufferAssignment(Plan, tinyBinding(), false, Vals,
                                      Buffers.slots(), Diags));
  EXPECT_TRUE(hasDiag(Diags, "floats, expected"));
}

TEST(VerifyBuffersTest, UnpinnedTrainingValueIsRejected) {
  CompositionPlan Plan = makeTinyPlan();
  BufferPlan Buffers(Plan, tinyBinding(), /*Training=*/true);
  std::vector<ValueBuffer> Vals = Buffers.values();
  ASSERT_TRUE(Vals[2].Pinned);
  Vals[2].Pinned = false;
  DiagEngine Diags;
  EXPECT_FALSE(verifyBufferAssignment(Plan, tinyBinding(), true, Vals,
                                      Buffers.slots(), Diags));
  EXPECT_TRUE(hasDiag(Diags, "unpinned value in training mode"));
}

//===----------------------------------------------------------------------===//
// Partition stage
//===----------------------------------------------------------------------===//

TEST(VerifyPartitionTest, ComputedPartitionsAreClean) {
  std::vector<int64_t> Offsets = {0, 3, 3, 10, 11, 40, 41, 44, 50};
  for (int64_t Chunks : {1, 2, 3, 7, 64}) {
    DiagEngine Diags;
    EXPECT_TRUE(verifyRowPartition(
        Offsets, csrRowPartitionBounds(Offsets, Chunks), Diags))
        << Chunks << " chunks:\n"
        << Diags.render();
  }
}

TEST(VerifyPartitionTest, GappedPartitionIsRejected) {
  std::vector<int64_t> Offsets = {0, 2, 4, 6};
  DiagEngine Diags;
  EXPECT_FALSE(verifyRowPartition(Offsets, {1, 3}, Diags));
  EXPECT_TRUE(hasDiag(Diags, "leaving rows before it uncovered"));
}

TEST(VerifyPartitionTest, ShortPartitionIsRejected) {
  std::vector<int64_t> Offsets = {0, 2, 4, 6};
  DiagEngine Diags;
  EXPECT_FALSE(verifyRowPartition(Offsets, {0, 2}, Diags));
  EXPECT_TRUE(hasDiag(Diags, "partition ends at row 2, expected 3"));
}

TEST(VerifyPartitionTest, DecreasingBoundIsRejected) {
  std::vector<int64_t> Offsets = {0, 2, 4, 6};
  DiagEngine Diags;
  EXPECT_FALSE(verifyRowPartition(Offsets, {0, 2, 1, 3}, Diags));
  EXPECT_TRUE(hasDiag(Diags, "bound decreases from 2 to 1"));
}

//===----------------------------------------------------------------------===//
// Umbrella pipeline
//===----------------------------------------------------------------------===//

TEST(VerifyPipelineTest, EveryModelPassesEndToEnd) {
  for (ModelKind Kind : extendedModels()) {
    PipelineReport Report = verifyPipeline(makeModel(Kind).Root);
    EXPECT_TRUE(Report.clean())
        << modelName(Kind) << ":\n"
        << Report.summary();
    // Every stage ran and the summary reports each one.
    ASSERT_EQ(Report.Stages.size(), 6u) << modelName(Kind);
    for (const char *Stage :
         {"ir:", "rewrite:", "plan:", "prune:", "buffers:", "partition:"})
      EXPECT_NE(Report.summary().find(Stage), std::string::npos)
          << modelName(Kind) << " missing " << Stage;
  }
}

TEST(VerifyPipelineTest, BrokenIRStopsAtTheFirstStage) {
  IRNodeRef H = ir::featuresLeaf();
  IRNodeRef A = ir::adjacencyLeaf();
  IRNodeRef Bad = std::make_shared<MatMulNode>(
      std::vector<IRNodeRef>{H, A}, SymShape{SymDim::n(), SymDim::n()},
      MatrixAttr::DenseData);
  PipelineReport Report = verifyPipeline(Bad);
  EXPECT_FALSE(Report.clean());
  ASSERT_EQ(Report.Stages.size(), 1u); // downstream stages are skipped
  EXPECT_EQ(Report.Stages[0].Stage, "ir");
  EXPECT_GT(Report.Stages[0].Errors, 0u);
}

} // namespace
