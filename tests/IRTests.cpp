//===- IRTests.cpp - Tests for the matrix IR and rewrites -------------------===//

#include "ir/MatrixIR.h"
#include "ir/Rewrite.h"

#include <gtest/gtest.h>

using namespace granii;

namespace {

/// D * A * D * H * W as broadcast-style IR (what the GCN frontend emits).
IRNodeRef gcnStyleIR() {
  IRNodeRef A = ir::adjacencyLeaf();
  IRNodeRef D = ir::degreeNormLeaf();
  IRNodeRef H = ir::featuresLeaf();
  IRNodeRef W = ir::weightLeaf();
  IRNodeRef Scaled = ir::rowBroadcast(D, H);
  IRNodeRef Agg = ir::matMul({A, Scaled});
  IRNodeRef Updated = ir::matMul({Agg, W});
  return ir::relu(ir::rowBroadcast(D, Updated));
}

} // namespace

TEST(MatrixAttr, Classification) {
  EXPECT_TRUE(isSparseAttr(MatrixAttr::Diagonal));
  EXPECT_TRUE(isSparseAttr(MatrixAttr::SparseUnweighted));
  EXPECT_FALSE(isSparseAttr(MatrixAttr::DenseWeight));
  EXPECT_TRUE(isDenseAttr(MatrixAttr::DenseData));
  EXPECT_EQ(attrName(MatrixAttr::SparseWeighted), "sparse.weighted");
  EXPECT_EQ(attrName(MatrixAttr::Diagonal), "sparse.diagonal");
}

TEST(SymDim, ToStringAndEval) {
  EXPECT_EQ(SymDim::n().toString(), "N");
  EXPECT_EQ(SymDim::kIn().toString(), "Kin");
  EXPECT_EQ(SymDim::constant(42).toString(), "42");
  DimBinding B{100, 8, 16, 500};
  EXPECT_EQ(B.eval(SymDim::n()), 100);
  EXPECT_EQ(B.eval(SymDim::kIn()), 8);
  EXPECT_EQ(B.eval(SymDim::kOut()), 16);
  EXPECT_EQ(B.eval(SymDim::one()), 1);
  EXPECT_EQ(B.eval(SymDim::constant(7)), 7);
}

TEST(MatrixIR, MatMulFlattensNestedChains) {
  IRNodeRef A = ir::adjacencyLeaf();
  IRNodeRef H = ir::featuresLeaf();
  IRNodeRef W = ir::weightLeaf();
  IRNodeRef Inner = ir::matMul({A, H});
  IRNodeRef Outer = ir::matMul({Inner, W});
  const auto &Mul = cast<MatMulNode>(Outer);
  EXPECT_EQ(Mul.operands().size(), 3u);
  EXPECT_EQ(Outer->canonicalKey(), "matmul(A,H,W)");
}

TEST(MatrixIR, ShapeInferenceThroughChain) {
  IRNodeRef Root = ir::matMul(
      {ir::adjacencyLeaf(), ir::featuresLeaf(), ir::weightLeaf()});
  EXPECT_EQ(Root->shape().Rows.toString(), "N");
  EXPECT_EQ(Root->shape().Cols.toString(), "Kout");
  EXPECT_EQ(Root->attr(), MatrixAttr::DenseData);
}

TEST(MatrixIR, DiagChainStaysDiagonal) {
  IRNodeRef D = ir::degreeNormLeaf();
  IRNodeRef Root = ir::matMul({D, D});
  EXPECT_EQ(Root->attr(), MatrixAttr::Diagonal);
}

TEST(MatrixIR, SparseChainWithoutDenseIsSparse) {
  IRNodeRef Root = ir::matMul(
      {ir::degreeNormLeaf(), ir::adjacencyLeaf(), ir::degreeNormLeaf()});
  EXPECT_EQ(Root->attr(), MatrixAttr::SparseWeighted);
}

TEST(MatrixIR, DynCastDispatch) {
  IRNodeRef Leaf = ir::featuresLeaf();
  EXPECT_NE(dynCast<LeafNode>(Leaf), nullptr);
  EXPECT_EQ(dynCast<MatMulNode>(Leaf), nullptr);
  EXPECT_EQ(cast<LeafNode>(Leaf).role(), LeafRole::Features);
}

TEST(MatrixIR, CollectLeavesDeduplicates) {
  IRNodeRef Root = gcnStyleIR();
  std::vector<const LeafNode *> Leaves = collectLeaves(Root);
  ASSERT_EQ(Leaves.size(), 4u); // A, D, H, W each once.
}

TEST(MatrixIR, PrinterShowsAttributesAndShapes) {
  std::string Text = printIR(gcnStyleIR());
  EXPECT_NE(Text.find("relu"), std::string::npos);
  EXPECT_NE(Text.find("rowbcast"), std::string::npos);
  EXPECT_NE(Text.find("A : sparse.unweighted NxN"), std::string::npos);
  EXPECT_NE(Text.find("W : dense.weight KinxKout"), std::string::npos);
}

TEST(MatrixIR, VerifierAcceptsWellFormed) { verifyIR(gcnStyleIR()); }

TEST(MatrixIR, VerifierRejectsDimMismatch) {
  // H (N x Kin) times H (N x Kin): inner dims differ (Kin vs N).
  IRNodeRef Bad = ir::matMul({ir::featuresLeaf(), ir::featuresLeaf()});
  EXPECT_DEATH(verifyIR(Bad), "dimension mismatch");
}

TEST(MatrixIR, VerifierRejectsNull) {
  EXPECT_DEATH(verifyIR(nullptr), "null IR root");
}

TEST(MatrixIR, ScaleKeepsShapeAndParam) {
  IRNodeRef S = ir::scale(1.5, ir::featuresLeaf());
  const auto &U = cast<UnaryNode>(S);
  EXPECT_EQ(U.op(), UnaryOpKind::Scale);
  EXPECT_DOUBLE_EQ(U.param(), 1.5);
  EXPECT_EQ(S->shape().Cols.toString(), "Kin");
}

TEST(MatrixIR, AttenProducesSparseWeighted) {
  IRNodeRef Theta = ir::matMul({ir::featuresLeaf(), ir::weightLeaf()});
  IRNodeRef Alpha = ir::atten(ir::adjacencyLeaf(), Theta, ir::attnSrcVecLeaf(),
                              ir::attnDstVecLeaf());
  EXPECT_EQ(Alpha->attr(), MatrixAttr::SparseWeighted);
  EXPECT_EQ(Alpha->shape().toString(), "NxN");
}

//===----------------------------------------------------------------------===//
// Rewrites
//===----------------------------------------------------------------------===//

TEST(Rewrite, BroadcastsBecomeDiagMatMuls) {
  IRNodeRef Rewritten = rewriteBroadcastsToDiag(gcnStyleIR());
  // relu(matmul(D, A, D, H, W)): one flat 5-operand chain under the relu.
  const auto &Relu = cast<UnaryNode>(Rewritten);
  const auto *Mul = dynCast<MatMulNode>(Relu.operand());
  ASSERT_NE(Mul, nullptr);
  EXPECT_EQ(Mul->operands().size(), 5u);
  EXPECT_EQ(Relu.operand()->canonicalKey(), "matmul(D,A,D,H,W)");
}

TEST(Rewrite, BroadcastRewriteIsIdempotent) {
  IRNodeRef Once = rewriteBroadcastsToDiag(gcnStyleIR());
  IRNodeRef Twice = rewriteBroadcastsToDiag(Once);
  EXPECT_EQ(Once->canonicalKey(), Twice->canonicalKey());
}

TEST(Rewrite, ColBroadcastAlsoRewritten) {
  IRNodeRef Root =
      ir::colBroadcast(ir::featuresLeaf(), ir::degreeNormLeaf());
  // Column broadcast by an N x N diagonal only typechecks when the matrix
  // has N columns; use adjacency * H instead: (A*H) has Kin columns, so
  // build H^T-shaped leaf via a custom leaf.
  IRNodeRef Rewritten = rewriteBroadcastsToDiag(Root);
  EXPECT_EQ(Rewritten->kind(), IRKind::MatMul);
}

TEST(Rewrite, DistributionProducesUpdateFirstVariant) {
  // ((s H) + (A H)) W  ->  (s H) W + A H W, and with scale pulled out the
  // shared H W GEMM appears.
  IRNodeRef A = ir::adjacencyLeaf();
  IRNodeRef H = ir::featuresLeaf();
  IRNodeRef W = ir::weightLeaf();
  IRNodeRef Sum = ir::add({ir::scale(1.1, H), ir::matMul({A, H})});
  IRNodeRef Root = ir::matMul({Sum, W});

  std::vector<IRNodeRef> Variants = enumerateDistributions(Root);
  EXPECT_GE(Variants.size(), 3u);
  EXPECT_EQ(Variants[0]->canonicalKey(), Root->canonicalKey());

  bool HasDistributed = false, HasScalePulledOut = false;
  for (const IRNodeRef &V : Variants) {
    std::string Key = V->canonicalKey();
    if (Key.find("add(matmul") != std::string::npos)
      HasDistributed = true;
    if (Key.find("scale[1.1") != std::string::npos &&
        Key.find("](matmul(H,W))") != std::string::npos)
      HasScalePulledOut = true;
  }
  EXPECT_TRUE(HasDistributed);
  EXPECT_TRUE(HasScalePulledOut);
}

TEST(Rewrite, DistributionDeduplicates) {
  IRNodeRef H = ir::featuresLeaf();
  IRNodeRef W = ir::weightLeaf();
  IRNodeRef Root = ir::matMul({H, W});
  std::vector<IRNodeRef> Variants = enumerateDistributions(Root);
  EXPECT_EQ(Variants.size(), 1u); // Nothing to distribute.
}

TEST(Rewrite, DistributionRespectsCap) {
  IRNodeRef A = ir::adjacencyLeaf();
  IRNodeRef H = ir::featuresLeaf();
  IRNodeRef W = ir::weightLeaf();
  IRNodeRef Sum = ir::add({H, ir::matMul({A, H}), ir::matMul({A, ir::matMul({A, H})})});
  IRNodeRef Root = ir::matMul({Sum, W});
  std::vector<IRNodeRef> Variants = enumerateDistributions(Root, 2);
  EXPECT_LE(Variants.size(), 2u);
}
