//===- ThreadPoolTests.cpp - Tests for the shared kernel thread pool --------===//
//
// Covers the pool's contracts: exclusive full-range coverage, exception
// propagation to the submitting thread, inline nested execution, runtime
// reconfiguration, and the nnz-balanced CSR row partitioner.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

using namespace granii;

namespace {

/// Pins the pool for one test and restores the default on destruction so
/// tests cannot leak configuration into each other.
class ScopedThreads {
public:
  explicit ScopedThreads(int Threads) {
    ThreadPool::get().setNumThreads(Threads);
  }
  ~ScopedThreads() { ThreadPool::get().setNumThreads(0); }
};

} // namespace

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ScopedThreads Scope(4);
  constexpr int64_t N = 10000;
  std::vector<int> Visits(N, 0);
  parallelFor(0, N, /*GrainSize=*/16, [&](int64_t Begin, int64_t End) {
    for (int64_t I = Begin; I < End; ++I)
      ++Visits[static_cast<size_t>(I)];
  });
  for (int64_t I = 0; I < N; ++I)
    ASSERT_EQ(Visits[static_cast<size_t>(I)], 1) << "index " << I;
}

TEST(ThreadPool, EmptyRangeNeverCallsBody) {
  ScopedThreads Scope(4);
  bool Called = false;
  parallelFor(5, 5, 1, [&](int64_t, int64_t) { Called = true; });
  parallelFor(7, 3, 1, [&](int64_t, int64_t) { Called = true; });
  EXPECT_FALSE(Called);
}

TEST(ThreadPool, ExceptionPropagatesToSubmitter) {
  ScopedThreads Scope(4);
  auto Run = [] {
    parallelFor(0, 1 << 16, 1, [](int64_t Begin, int64_t) {
      if (Begin == 0)
        throw std::runtime_error("boom");
    });
  };
  EXPECT_THROW(Run(), std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::vector<int> Visits(100, 0);
  parallelFor(0, 100, 1, [&](int64_t Begin, int64_t End) {
    for (int64_t I = Begin; I < End; ++I)
      ++Visits[static_cast<size_t>(I)];
  });
  EXPECT_EQ(std::accumulate(Visits.begin(), Visits.end(), 0), 100);
}

TEST(ThreadPool, NestedParallelForRunsInlineAndCompletes) {
  ScopedThreads Scope(4);
  constexpr int64_t Outer = 64, Inner = 64;
  std::vector<int> Visits(Outer * Inner, 0);
  parallelFor(0, Outer, 1, [&](int64_t OBegin, int64_t OEnd) {
    for (int64_t O = OBegin; O < OEnd; ++O)
      parallelFor(0, Inner, 1, [&](int64_t IBegin, int64_t IEnd) {
        for (int64_t I = IBegin; I < IEnd; ++I)
          ++Visits[static_cast<size_t>(O * Inner + I)];
      });
  });
  for (size_t I = 0; I < Visits.size(); ++I)
    ASSERT_EQ(Visits[I], 1) << "cell " << I;
}

TEST(ThreadPool, SetNumThreadsReconfigures) {
  ThreadPool &Pool = ThreadPool::get();
  Pool.setNumThreads(3);
  EXPECT_EQ(Pool.numThreads(), 3);
  Pool.setNumThreads(1);
  EXPECT_EQ(Pool.numThreads(), 1);
  // Work still runs correctly in the single-thread configuration.
  int64_t Sum = 0;
  parallelFor(0, 10, 1, [&](int64_t Begin, int64_t End) {
    for (int64_t I = Begin; I < End; ++I)
      Sum += I;
  });
  EXPECT_EQ(Sum, 45);
  Pool.setNumThreads(0);
  EXPECT_GE(Pool.numThreads(), 1);
}

TEST(ThreadPool, CsrRowPartitionCoversSkewedOffsets) {
  ScopedThreads Scope(4);
  // One hub row holding most of the nonzeros, then a long sparse tail —
  // the shape the nnz-balanced split exists for.
  constexpr int64_t Rows = 4000;
  std::vector<int64_t> Offsets(Rows + 1, 0);
  Offsets[1] = 6000; // hub row 0
  for (int64_t R = 1; R < Rows; ++R)
    Offsets[static_cast<size_t>(R) + 1] =
        Offsets[static_cast<size_t>(R)] + (R % 2); // alternating 1/0 tail
  std::vector<int> Visits(Rows, 0);
  parallelForCsrRows(Offsets, [&](int64_t Begin, int64_t End) {
    ASSERT_LT(Begin, End);
    for (int64_t R = Begin; R < End; ++R)
      ++Visits[static_cast<size_t>(R)];
  });
  for (int64_t R = 0; R < Rows; ++R)
    ASSERT_EQ(Visits[static_cast<size_t>(R)], 1) << "row " << R;
}

//===----------------------------------------------------------------------===//
// GRANII_NUM_THREADS / --threads parsing and clamping
//===----------------------------------------------------------------------===//

TEST(ParseThreadCount, AcceptsPlainAndPaddedIntegers) {
  std::string Warning;
  EXPECT_EQ(parseThreadCount("4", 0, &Warning), 4);
  EXPECT_TRUE(Warning.empty());
  EXPECT_EQ(parseThreadCount("  8\t", 0, &Warning), 8);
  EXPECT_TRUE(Warning.empty()) << Warning;
  EXPECT_EQ(parseThreadCount("1", 0, &Warning), 1);
  EXPECT_TRUE(Warning.empty()) << Warning;
}

TEST(ParseThreadCount, RejectsNonNumericWithFallback) {
  for (const char *Bad : {"", "   ", "abc", "4abc", "3x2", "1.5", "+4"}) {
    std::string Warning;
    EXPECT_EQ(parseThreadCount(Bad, 7, &Warning), 7) << "'" << Bad << "'";
    EXPECT_NE(Warning.find("not an integer"), std::string::npos)
        << "'" << Bad << "' produced: " << Warning;
  }
  // A clean parse must leave an existing warning untouched.
  std::string Warning = "prior";
  EXPECT_EQ(parseThreadCount("2", 0, &Warning), 2);
  EXPECT_EQ(Warning, "prior");
  // And the warning pointer is optional.
  EXPECT_EQ(parseThreadCount("junk", 3, nullptr), 3);
}

TEST(ParseThreadCount, ClampsOutOfRangeValues) {
  int Cap = maxConfigurableThreads();
  ASSERT_GE(Cap, 32);
  std::string Warning;
  EXPECT_EQ(parseThreadCount("0", 5, &Warning), 1);
  EXPECT_NE(Warning.find("clamping to 1"), std::string::npos) << Warning;
  Warning.clear();
  EXPECT_EQ(parseThreadCount("-5", 5, &Warning), 1);
  EXPECT_NE(Warning.find("clamping to 1"), std::string::npos) << Warning;
  Warning.clear();
  EXPECT_EQ(parseThreadCount("99999999", 5, &Warning), Cap);
  EXPECT_NE(Warning.find("exceeds the configurable maximum"),
            std::string::npos)
      << Warning;
  // Values past the integer range clamp by sign instead of wrapping.
  Warning.clear();
  EXPECT_EQ(parseThreadCount("99999999999999999999999", 5, &Warning), Cap);
  EXPECT_NE(Warning.find("clamping to " + std::to_string(Cap)),
            std::string::npos)
      << Warning;
  Warning.clear();
  EXPECT_EQ(parseThreadCount("-99999999999999999999999", 5, &Warning), 1);
  EXPECT_NE(Warning.find("clamping to 1"), std::string::npos) << Warning;
}

TEST(ThreadPool, CsrRowPartitionHandlesDegenerateShapes) {
  ScopedThreads Scope(4);
  // No rows at all.
  bool Called = false;
  parallelForCsrRows(std::vector<int64_t>{0},
                     [&](int64_t, int64_t) { Called = true; });
  EXPECT_FALSE(Called);
  // All-empty rows: covered once via the constant per-row cost term.
  std::vector<int64_t> Empty(1001, 0);
  std::atomic<int64_t> Covered{0};
  parallelForCsrRows(Empty, [&](int64_t Begin, int64_t End) {
    Covered += End - Begin;
  });
  EXPECT_EQ(Covered.load(), 1000);
}

TEST(ThreadPool, QuiesceDrainsAndPoolStaysUsable) {
  ScopedThreads Scope(4);
  std::atomic<int64_t> Sum{0};
  parallelFor(0, 1000, 1, [&](int64_t Begin, int64_t End) {
    for (int64_t I = Begin; I < End; ++I)
      Sum += I;
  });
  ThreadPool::get().quiesce();
  // Configuration survives the drain...
  EXPECT_EQ(ThreadPool::get().numThreads(), 4);
  // ...and the next loop lazily restarts the workers.
  std::atomic<int64_t> Sum2{0};
  parallelFor(0, 1000, 1, [&](int64_t Begin, int64_t End) {
    for (int64_t I = Begin; I < End; ++I)
      Sum2 += I;
  });
  EXPECT_EQ(Sum.load(), Sum2.load());
  EXPECT_EQ(Sum2.load(), 999 * 1000 / 2);
}

TEST(ThreadPool, QuiesceIsIdempotentAndSafeWhenIdle) {
  ScopedThreads Scope(3);
  // Never ran a job: nothing to drain, must not hang or crash.
  ThreadPool::get().quiesce();
  ThreadPool::get().quiesce();
  std::atomic<int64_t> Count{0};
  parallelFor(0, 64, 1,
              [&](int64_t Begin, int64_t End) { Count += End - Begin; });
  EXPECT_EQ(Count.load(), 64);
}

TEST(ThreadPool, QuiesceWaitsOutConcurrentSubmitters) {
  // The shutdown-race regression test (run under TSan in CI): quiesce()
  // takes the submit lock, so it cannot tear workers down while another
  // thread's parallelFor is mid-job or mid-(re)start.
  ScopedThreads Scope(4);
  std::atomic<bool> Stop{false};
  std::atomic<int64_t> Jobs{0};
  std::thread Submitter([&] {
    while (!Stop.load()) {
      std::atomic<int64_t> Local{0};
      parallelFor(0, 4096, 16, [&](int64_t Begin, int64_t End) {
        Local += End - Begin;
      });
      EXPECT_EQ(Local.load(), 4096);
      ++Jobs;
    }
  });
  // Keep draining until the submitter has demonstrably interleaved with at
  // least a handful of quiesce() calls.
  while (Jobs.load() < 5)
    ThreadPool::get().quiesce();
  Stop.store(true);
  Submitter.join();
  EXPECT_GE(Jobs.load(), 5);
}
