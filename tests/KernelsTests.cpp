//===- KernelsTests.cpp - Tests for the primitive kernel library ------------===//
//
// Every sparse/dense primitive is checked against a naive dense reference
// on randomized inputs, including parameterized sweeps over shapes.
//
//===----------------------------------------------------------------------===//

#include "graph/Generators.h"
#include "kernels/Kernels.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "tensor/CooMatrix.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace granii;

namespace {

DenseMatrix randomDense(int64_t Rows, int64_t Cols, uint64_t Seed) {
  Rng R(Seed);
  DenseMatrix M(Rows, Cols);
  M.fillRandom(R, -1.0f, 1.0f);
  return M;
}

CsrMatrix randomSparse(int64_t Rows, int64_t Cols, int64_t Entries,
                       uint64_t Seed, bool Weighted) {
  Rng R(Seed);
  CooMatrix Coo(Rows, Cols);
  for (int64_t I = 0; I < Entries; ++I)
    Coo.add(static_cast<int64_t>(R.nextBelow(static_cast<uint64_t>(Rows))),
            static_cast<int64_t>(R.nextBelow(static_cast<uint64_t>(Cols))),
            R.nextFloat(0.1f, 1.0f));
  return Coo.toCsr(!Weighted);
}

/// Reference dense matmul with double accumulation.
DenseMatrix refGemm(const DenseMatrix &A, const DenseMatrix &B) {
  DenseMatrix C(A.rows(), B.cols());
  for (int64_t I = 0; I < A.rows(); ++I)
    for (int64_t J = 0; J < B.cols(); ++J) {
      double Acc = 0.0;
      for (int64_t K = 0; K < A.cols(); ++K)
        Acc += static_cast<double>(A.at(I, K)) * B.at(K, J);
      C.at(I, J) = static_cast<float>(Acc);
    }
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// GEMM family (parameterized shape sweep)
//===----------------------------------------------------------------------===//

struct GemmShape {
  int64_t M, K, N;
};

class GemmShapes : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmShapes, MatchesReference) {
  auto [M, K, N] = GetParam();
  DenseMatrix A = randomDense(M, K, 1000 + M);
  DenseMatrix B = randomDense(K, N, 2000 + N);
  EXPECT_TRUE(kernels::gemm(A, B).approxEquals(refGemm(A, B), 1e-3f, 1e-3f));
}

TEST_P(GemmShapes, TransposedLhsMatchesExplicitTranspose) {
  auto [M, K, N] = GetParam();
  DenseMatrix A = randomDense(K, M, 31 + M); // A^T is M x K
  DenseMatrix B = randomDense(K, N, 32 + N);
  DenseMatrix Expected = refGemm(A.transposed(), B);
  EXPECT_TRUE(
      kernels::gemmTransposedLhs(A, B).approxEquals(Expected, 1e-3f, 1e-3f));
}

TEST_P(GemmShapes, TransposedRhsMatchesExplicitTranspose) {
  auto [M, K, N] = GetParam();
  DenseMatrix A = randomDense(M, K, 41 + M);
  DenseMatrix B = randomDense(N, K, 42 + N); // B^T is K x N
  DenseMatrix Expected = refGemm(A, B.transposed());
  EXPECT_TRUE(
      kernels::gemmTransposedRhs(A, B).approxEquals(Expected, 1e-3f, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapes,
                         ::testing::Values(GemmShape{1, 1, 1},
                                           GemmShape{3, 5, 2},
                                           GemmShape{16, 16, 16},
                                           GemmShape{7, 33, 12},
                                           GemmShape{40, 1, 9},
                                           GemmShape{1, 64, 1}));

TEST(Gemm, AccumulateAddsIntoExisting) {
  DenseMatrix A = randomDense(4, 3, 7);
  DenseMatrix B = randomDense(3, 5, 8);
  DenseMatrix C(4, 5);
  C.fill(1.0f);
  kernels::gemmAccumulate(A, B, C);
  DenseMatrix Expected = refGemm(A, B);
  for (int64_t I = 0; I < 4; ++I)
    for (int64_t J = 0; J < 5; ++J)
      EXPECT_NEAR(C.at(I, J), Expected.at(I, J) + 1.0f, 1e-3f);
}

TEST(Gemv, MatchesGemmWithSingleColumn) {
  DenseMatrix A = randomDense(9, 6, 50);
  Rng R(51);
  std::vector<float> X(6);
  for (float &V : X)
    V = R.nextFloat(-1.f, 1.f);
  std::vector<float> Y = kernels::gemv(A, X);
  for (int64_t I = 0; I < 9; ++I) {
    double Acc = 0.0;
    for (int64_t J = 0; J < 6; ++J)
      Acc += static_cast<double>(A.at(I, J)) * X[static_cast<size_t>(J)];
    EXPECT_NEAR(Y[static_cast<size_t>(I)], Acc, 1e-4);
  }
}

//===----------------------------------------------------------------------===//
// Broadcasts and elementwise
//===----------------------------------------------------------------------===//

TEST(Broadcast, RowBroadcastScalesRows) {
  DenseMatrix H = randomDense(3, 4, 60);
  std::vector<float> D = {2.0f, 0.0f, -1.0f};
  DenseMatrix Out = kernels::rowBroadcastMul(D, H);
  for (int64_t C = 0; C < 4; ++C) {
    EXPECT_FLOAT_EQ(Out.at(0, C), 2.0f * H.at(0, C));
    EXPECT_FLOAT_EQ(Out.at(1, C), 0.0f);
    EXPECT_FLOAT_EQ(Out.at(2, C), -H.at(2, C));
  }
}

TEST(Broadcast, RowBroadcastEqualsDiagGemm) {
  DenseMatrix H = randomDense(5, 3, 61);
  std::vector<float> D = {1.f, 2.f, 3.f, 4.f, 5.f};
  DenseMatrix Diag(5, 5);
  for (int64_t I = 0; I < 5; ++I)
    Diag.at(I, I) = D[static_cast<size_t>(I)];
  EXPECT_TRUE(kernels::rowBroadcastMul(D, H).approxEquals(refGemm(Diag, H),
                                                          1e-4f, 1e-4f));
}

TEST(Broadcast, ColBroadcastEqualsDiagGemm) {
  DenseMatrix H = randomDense(4, 3, 62);
  std::vector<float> D = {2.f, 3.f, 4.f};
  DenseMatrix Diag(3, 3);
  for (int64_t I = 0; I < 3; ++I)
    Diag.at(I, I) = D[static_cast<size_t>(I)];
  EXPECT_TRUE(kernels::colBroadcastMul(H, D).approxEquals(refGemm(H, Diag),
                                                          1e-4f, 1e-4f));
}

TEST(Elementwise, AddAndAxpyAgree) {
  DenseMatrix A = randomDense(6, 6, 70), B = randomDense(6, 6, 71);
  DenseMatrix Sum = kernels::addMatrices(A, B);
  DenseMatrix Axpy = B;
  kernels::axpyInto(1.0f, A, Axpy);
  EXPECT_TRUE(Sum.approxEquals(Axpy, 0.0f, 0.0f));
}

TEST(Elementwise, ScaleMatrix) {
  DenseMatrix A = randomDense(2, 3, 72);
  DenseMatrix S = kernels::scaleMatrix(A, -2.0f);
  EXPECT_FLOAT_EQ(S.at(1, 2), -2.0f * A.at(1, 2));
}

TEST(Elementwise, ReluClampsNegatives) {
  DenseMatrix A(1, 4);
  A.at(0, 0) = -1.0f;
  A.at(0, 1) = 2.0f;
  A.at(0, 2) = 0.0f;
  A.at(0, 3) = -0.5f;
  DenseMatrix R = kernels::relu(A);
  EXPECT_FLOAT_EQ(R.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(R.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(R.at(0, 3), 0.0f);
}

TEST(Elementwise, LeakyReluSlope) {
  DenseMatrix A(1, 2);
  A.at(0, 0) = -10.0f;
  A.at(0, 1) = 10.0f;
  DenseMatrix R = kernels::leakyRelu(A, 0.1f);
  EXPECT_FLOAT_EQ(R.at(0, 0), -1.0f);
  EXPECT_FLOAT_EQ(R.at(0, 1), 10.0f);
}

TEST(Elementwise, ReluBackwardMasks) {
  DenseMatrix Pre(1, 2), Grad(1, 2);
  Pre.at(0, 0) = -1.0f;
  Pre.at(0, 1) = 1.0f;
  Grad.fill(5.0f);
  DenseMatrix G = kernels::reluBackward(Pre, Grad);
  EXPECT_FLOAT_EQ(G.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(G.at(0, 1), 5.0f);
}

//===----------------------------------------------------------------------===//
// Sparse primitives vs dense reference
//===----------------------------------------------------------------------===//

struct SpmmCase {
  int64_t N, K, Entries;
  uint64_t Seed;
};

class SpmmCases : public ::testing::TestWithParam<SpmmCase> {};

TEST_P(SpmmCases, WeightedMatchesDenseReference) {
  auto [N, K, Entries, Seed] = GetParam();
  CsrMatrix A = randomSparse(N, N, Entries, Seed, /*Weighted=*/true);
  DenseMatrix B = randomDense(N, K, Seed + 1);
  DenseMatrix Expected = refGemm(A.toDense(), B);
  EXPECT_TRUE(kernels::spmm(A, B).approxEquals(Expected, 1e-3f, 1e-3f));
}

TEST_P(SpmmCases, UnweightedIgnoresValues) {
  auto [N, K, Entries, Seed] = GetParam();
  CsrMatrix A = randomSparse(N, N, Entries, Seed, /*Weighted=*/false);
  DenseMatrix B = randomDense(N, K, Seed + 2);
  DenseMatrix Expected = refGemm(A.toDense(), B);
  DenseMatrix Got = kernels::spmm(A, B, Semiring::plusCopy());
  EXPECT_TRUE(Got.approxEquals(Expected, 1e-3f, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, SpmmCases,
                         ::testing::Values(SpmmCase{5, 3, 8, 100},
                                           SpmmCase{20, 8, 60, 200},
                                           SpmmCase{64, 16, 400, 300},
                                           SpmmCase{10, 1, 15, 400},
                                           SpmmCase{1, 4, 1, 500}));

TEST(Spmm, MaxSemiringTakesRowMax) {
  CooMatrix Coo(2, 3);
  Coo.add(0, 0);
  Coo.add(0, 2);
  CsrMatrix A = Coo.toCsr();
  DenseMatrix B(3, 1);
  B.at(0, 0) = 1.0f;
  B.at(1, 0) = 99.0f; // Not a neighbor; must not appear.
  B.at(2, 0) = 7.0f;
  DenseMatrix Out = kernels::spmm(A, B, Semiring::maxCopy());
  EXPECT_FLOAT_EQ(Out.at(0, 0), 7.0f);
  EXPECT_FLOAT_EQ(Out.at(1, 0), 0.0f); // Empty row stays zero.
}

TEST(Spmm, MeanSemiringAverages) {
  CooMatrix Coo(1, 2);
  Coo.add(0, 0);
  Coo.add(0, 1);
  CsrMatrix A = Coo.toCsr();
  DenseMatrix B(2, 1);
  B.at(0, 0) = 2.0f;
  B.at(1, 0) = 4.0f;
  DenseMatrix Out = kernels::spmm(A, B, Semiring::meanCopy());
  EXPECT_FLOAT_EQ(Out.at(0, 0), 3.0f);
}

TEST(Sddmm, DotMatchesDense) {
  CsrMatrix Mask = randomSparse(8, 8, 20, 600, false);
  DenseMatrix U = randomDense(8, 5, 601);
  DenseMatrix V = randomDense(8, 5, 602);
  std::vector<float> Vals = kernels::sddmm(Mask, U, V);
  const auto &Offsets = Mask.rowOffsets();
  const auto &Cols = Mask.colIndices();
  for (int64_t R = 0; R < 8; ++R)
    for (int64_t K = Offsets[static_cast<size_t>(R)];
         K < Offsets[static_cast<size_t>(R) + 1]; ++K) {
      double Acc = 0.0;
      int64_t C = Cols[static_cast<size_t>(K)];
      for (int64_t F = 0; F < 5; ++F)
        Acc += static_cast<double>(U.at(R, F)) * V.at(C, F);
      EXPECT_NEAR(Vals[static_cast<size_t>(K)], Acc, 1e-4);
    }
}

TEST(Sddmm, AddScalarsPerEdge) {
  CooMatrix Coo(3, 3);
  Coo.add(0, 1);
  Coo.add(2, 0);
  CsrMatrix Mask = Coo.toCsr();
  std::vector<float> Src = {1.f, 2.f, 3.f};
  std::vector<float> Dst = {10.f, 20.f, 30.f};
  std::vector<float> Vals = kernels::sddmmAddScalars(Mask, Src, Dst);
  EXPECT_FLOAT_EQ(Vals[0], 1.f + 20.f); // edge (0,1)
  EXPECT_FLOAT_EQ(Vals[1], 3.f + 10.f); // edge (2,0)
}

TEST(SparseScale, RowColBothAgreeWithDense) {
  CsrMatrix A = randomSparse(6, 6, 14, 700, true);
  std::vector<float> L = {1.f, 2.f, 3.f, 4.f, 5.f, 6.f};
  std::vector<float> R = {0.5f, 1.f, 1.5f, 2.f, 2.5f, 3.f};

  DenseMatrix DL(6, 6), DR(6, 6);
  for (int64_t I = 0; I < 6; ++I) {
    DL.at(I, I) = L[static_cast<size_t>(I)];
    DR.at(I, I) = R[static_cast<size_t>(I)];
  }
  DenseMatrix Ad = A.toDense();

  EXPECT_TRUE(kernels::scaleSparseRows(A, L).toDense().approxEquals(
      refGemm(DL, Ad), 1e-4f, 1e-4f));
  EXPECT_TRUE(kernels::scaleSparseCols(A, R).toDense().approxEquals(
      refGemm(Ad, DR), 1e-4f, 1e-4f));
  EXPECT_TRUE(kernels::scaleSparseBoth(A, L, R).toDense().approxEquals(
      refGemm(refGemm(DL, Ad), DR), 1e-4f, 1e-4f));
}

TEST(SparseScale, FusedEqualsTwoPass) {
  CsrMatrix A = randomSparse(10, 10, 30, 701, false);
  std::vector<float> L(10), R(10);
  Rng Gen(702);
  for (size_t I = 0; I < 10; ++I) {
    L[I] = Gen.nextFloat(0.1f, 2.f);
    R[I] = Gen.nextFloat(0.1f, 2.f);
  }
  CsrMatrix Fused = kernels::scaleSparseBoth(A, L, R);
  CsrMatrix TwoPass = kernels::scaleSparseCols(kernels::scaleSparseRows(A, L), R);
  ASSERT_EQ(Fused.nnz(), TwoPass.nnz());
  for (int64_t K = 0; K < Fused.nnz(); ++K)
    EXPECT_NEAR(Fused.valueAt(K), TwoPass.valueAt(K), 1e-5f);
}

TEST(EdgeSoftmax, RowsSumToOne) {
  CsrMatrix A = randomSparse(12, 12, 40, 800, true);
  std::vector<float> Soft = kernels::edgeSoftmax(A, A.values());
  const auto &Offsets = A.rowOffsets();
  for (int64_t R = 0; R < 12; ++R) {
    int64_t Begin = Offsets[static_cast<size_t>(R)];
    int64_t End = Offsets[static_cast<size_t>(R) + 1];
    if (Begin == End)
      continue;
    double Sum = 0.0;
    for (int64_t K = Begin; K < End; ++K) {
      EXPECT_GT(Soft[static_cast<size_t>(K)], 0.0f);
      Sum += Soft[static_cast<size_t>(K)];
    }
    EXPECT_NEAR(Sum, 1.0, 1e-5);
  }
}

TEST(EdgeSoftmax, LargeLogitsAreStable) {
  CooMatrix Coo(1, 2);
  Coo.add(0, 0);
  Coo.add(0, 1);
  CsrMatrix A = Coo.toCsr();
  std::vector<float> Soft =
      kernels::edgeSoftmax(A, std::vector<float>{500.0f, 500.0f});
  EXPECT_NEAR(Soft[0], 0.5f, 1e-6f);
  EXPECT_FALSE(std::isnan(Soft[1]));
}

TEST(EdgeMap, LeakyReluEdges) {
  std::vector<float> Out =
      kernels::leakyReluEdges(std::vector<float>{-1.0f, 2.0f}, 0.25f);
  EXPECT_FLOAT_EQ(Out[0], -0.25f);
  EXPECT_FLOAT_EQ(Out[1], 2.0f);
}

//===----------------------------------------------------------------------===//
// Degree kernels
//===----------------------------------------------------------------------===//

TEST(Degree, OffsetsAndBinningAgree) {
  CsrMatrix A = randomSparse(30, 30, 100, 900, false);
  std::vector<float> Off = kernels::degreeFromOffsets(A);
  std::vector<float> Bin = kernels::degreeByBinning(A);
  ASSERT_EQ(Off.size(), Bin.size());
  for (size_t I = 0; I < Off.size(); ++I)
    EXPECT_FLOAT_EQ(Off[I], Bin[I]);
}

TEST(Degree, SumsToNnz) {
  CsrMatrix A = randomSparse(25, 25, 80, 901, false);
  std::vector<float> Deg = kernels::degreeFromOffsets(A);
  double Sum = 0.0;
  for (float D : Deg)
    Sum += D;
  EXPECT_DOUBLE_EQ(Sum, static_cast<double>(A.nnz()));
}

TEST(Degree, InvSqrtZeroesIsolatedNodes) {
  std::vector<float> Out = kernels::invSqrt({0.0f, 4.0f});
  EXPECT_FLOAT_EQ(Out[0], 0.0f); // isolated node: no normalization mass
  EXPECT_FLOAT_EQ(Out[1], 0.5f);
}

TEST(Degree, InvDegreeZeroesIsolatedNodes) {
  std::vector<float> Out = kernels::invDegree({0.0f, 4.0f});
  EXPECT_FLOAT_EQ(Out[0], 0.0f);
  EXPECT_FLOAT_EQ(Out[1], 0.25f);
}

// Symmetric normalization on a graph with isolated vertices must match the
// dense D^-1/2 A D^-1/2 reference, whose isolated rows/columns are all
// zero. The old max(deg, 1) clamp instead injected coefficient 1 for
// isolated nodes, which is invisible on row terms (deg 0 => no edges) but
// wrong as soon as an isolated node's coefficient multiplies an incoming
// column term.
TEST(Degree, NormalizationMatchesDenseReferenceWithIsolatedVertices) {
  // 4 nodes; node 2 is isolated. Edges: 0<->1, 0->3.
  CooMatrix Coo(4, 4);
  Coo.add(0, 1, 1.0f);
  Coo.add(1, 0, 1.0f);
  Coo.add(0, 3, 1.0f);
  CsrMatrix A = Coo.toCsr(/*Structural=*/false);

  std::vector<float> Deg = kernels::degreeFromOffsets(A);
  std::vector<float> Norm = kernels::invSqrt(Deg);
  CsrMatrix Scaled = kernels::scaleSparseBoth(A, Norm, Norm);

  // Dense reference built from the true degrees, 0 coefficient when deg 0.
  DenseMatrix Dense = A.toDense();
  DenseMatrix Expected(4, 4);
  for (int64_t I = 0; I < 4; ++I)
    for (int64_t J = 0; J < 4; ++J) {
      float Di = Deg[static_cast<size_t>(I)];
      float Dj = Deg[static_cast<size_t>(J)];
      float Ci = Di > 0.0f ? 1.0f / std::sqrt(Di) : 0.0f;
      float Cj = Dj > 0.0f ? 1.0f / std::sqrt(Dj) : 0.0f;
      Expected.at(I, J) = Ci * Dense.at(I, J) * Cj;
    }
  EXPECT_TRUE(Scaled.toDense().approxEquals(Expected, 1e-6f, 1e-6f));

  // Node 3 has out-degree 0 but in-degree 1: with the old clamp the edge
  // 0->3 would keep weight 1/sqrt(2) * 1 instead of being zeroed by node
  // 3's column coefficient... the column direction is where the clamp bit.
  EXPECT_FLOAT_EQ(Scaled.toDense().at(0, 3), 0.0f);
}

//===----------------------------------------------------------------------===//
// Shape precondition checks (always-on, not assert-gated)
//===----------------------------------------------------------------------===//

TEST(KernelChecks, GemmInnerDimMismatchDies) {
  DenseMatrix A = randomDense(4, 5, 70);
  DenseMatrix B = randomDense(6, 3, 71); // inner dim 5 != 6
  EXPECT_DEATH(kernels::gemm(A, B), "gemm inner dimension mismatch");
}

TEST(KernelChecks, SpmmDimMismatchDies) {
  CsrMatrix A = randomSparse(8, 8, 20, 72, true);
  DenseMatrix B = randomDense(9, 4, 73); // 8 cols vs 9 rows
  EXPECT_DEATH(kernels::spmm(A, B), "spmm dimension mismatch");
}

TEST(KernelChecks, GemmIntoWrongDstShapeDies) {
  DenseMatrix A = randomDense(4, 5, 74);
  DenseMatrix B = randomDense(5, 3, 75);
  DenseMatrix Dst(4, 2); // should be 4 x 3
  EXPECT_DEATH(kernels::gemmInto(A, B, Dst),
               "gemm destination shape mismatch");
}

TEST(KernelChecks, SpmmIntoWrongDstShapeDies) {
  CsrMatrix A = randomSparse(8, 8, 20, 76, true);
  DenseMatrix B = randomDense(8, 4, 77);
  DenseMatrix Dst(7, 4); // should be 8 x 4
  EXPECT_DEATH(kernels::spmmInto(A, B, Semiring::plusTimes(), Dst),
               "spmm destination shape mismatch");
}

//===----------------------------------------------------------------------===//
// Determinism across thread counts
//===----------------------------------------------------------------------===//

namespace {

/// Runs \p Fn with the pool pinned to \p Threads, then restores the
/// default configuration.
template <typename Fn> auto withThreads(int Threads, Fn &&F) {
  ThreadPool::get().setNumThreads(Threads);
  auto Result = F();
  ThreadPool::get().setNumThreads(0);
  return Result;
}

/// Skewed power-law graph: R-MAT concentrates edges on hub rows, so the
/// nnz-balanced partition differs strongly from an equal-row split.
const Graph &skewedGraph() {
  static Graph G = makeRmat(1500, 20000, 0.57, 0.19, 0.19, 9);
  return G;
}

void expectBitwiseEqual(const DenseMatrix &A, const DenseMatrix &B) {
  ASSERT_EQ(A.rows(), B.rows());
  ASSERT_EQ(A.cols(), B.cols());
  const float *PA = A.data();
  const float *PB = B.data();
  for (int64_t I = 0, E = A.size(); I < E; ++I)
    ASSERT_EQ(PA[I], PB[I]) << "element " << I;
}

void expectBitwiseEqual(std::span<const float> A, std::span<const float> B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_EQ(A[I], B[I]) << "element " << I;
}

} // namespace

TEST(Determinism, SpmmUnweightedBitwiseIdenticalAcrossThreadCounts) {
  const Graph &G = skewedGraph();
  DenseMatrix H = randomDense(G.numNodes(), 48, 81);
  DenseMatrix One = withThreads(
      1, [&] { return kernels::spmm(G.adjacency(), H, Semiring::plusCopy()); });
  for (int Threads : {2, 3, 8}) {
    DenseMatrix Many = withThreads(Threads, [&] {
      return kernels::spmm(G.adjacency(), H, Semiring::plusCopy());
    });
    expectBitwiseEqual(One, Many);
  }
}

TEST(Determinism, SpmmWeightedBitwiseIdenticalAcrossThreadCounts) {
  const Graph &G = skewedGraph();
  CsrMatrix A = G.adjacency();
  Rng R(82);
  std::vector<float> Vals(static_cast<size_t>(A.nnz()));
  for (float &V : Vals)
    V = R.nextFloat(0.1f, 1.0f);
  A.setValues(std::move(Vals));
  DenseMatrix H = randomDense(G.numNodes(), 48, 83);
  DenseMatrix One = withThreads(1, [&] { return kernels::spmm(A, H); });
  DenseMatrix Eight = withThreads(8, [&] { return kernels::spmm(A, H); });
  expectBitwiseEqual(One, Eight);
}

TEST(Determinism, GemmFamilyBitwiseIdenticalAcrossThreadCounts) {
  DenseMatrix A = randomDense(300, 64, 84);
  DenseMatrix B = randomDense(64, 96, 85);
  expectBitwiseEqual(withThreads(1, [&] { return kernels::gemm(A, B); }),
                     withThreads(8, [&] { return kernels::gemm(A, B); }));
  DenseMatrix At = randomDense(300, 64, 86); // A^T*B over shared dim 300
  expectBitwiseEqual(
      withThreads(1, [&] { return kernels::gemmTransposedLhs(At, A); }),
      withThreads(8, [&] { return kernels::gemmTransposedLhs(At, A); }));
  expectBitwiseEqual(
      withThreads(1, [&] { return kernels::gemmTransposedRhs(A, At); }),
      withThreads(8, [&] { return kernels::gemmTransposedRhs(A, At); }));
}

TEST(Determinism, SddmmBitwiseIdenticalAcrossThreadCounts) {
  const Graph &G = skewedGraph();
  DenseMatrix U = randomDense(G.numNodes(), 32, 87);
  DenseMatrix V = randomDense(G.numNodes(), 32, 88);
  expectBitwiseEqual(
      withThreads(1, [&] { return kernels::sddmm(G.adjacency(), U, V); }),
      withThreads(8, [&] { return kernels::sddmm(G.adjacency(), U, V); }));
}

TEST(Determinism, EdgeSoftmaxBitwiseIdenticalAcrossThreadCounts) {
  const Graph &G = skewedGraph();
  Rng R(89);
  std::vector<float> Logits(static_cast<size_t>(G.numEdges()));
  for (float &V : Logits)
    V = R.nextFloat(-2.0f, 2.0f);
  expectBitwiseEqual(
      withThreads(1, [&] { return kernels::edgeSoftmax(G.adjacency(), Logits); }),
      withThreads(8, [&] { return kernels::edgeSoftmax(G.adjacency(), Logits); }));
}

TEST(Determinism, TransposeBitwiseIdenticalAcrossThreadCounts) {
  const Graph &G = skewedGraph();
  CsrMatrix One = withThreads(1, [&] { return G.adjacency().transposed(); });
  CsrMatrix Eight = withThreads(8, [&] { return G.adjacency().transposed(); });
  ASSERT_EQ(One.rowOffsets(), Eight.rowOffsets());
  ASSERT_EQ(One.colIndices(), Eight.colIndices());
  expectBitwiseEqual(One.values(), Eight.values());
}
