//===- LintTests.cpp - granii-lint rule fixtures ------------------------------===//
//
// Each test plants a violation in an in-memory fixture and asserts the rule
// id and line granii-lint reports, plus the negative cases (exempt paths,
// suppression directives, literals) that keep the lint quiet on valid code.
//
//===----------------------------------------------------------------------===//

#include "Lint.h"

#include <gtest/gtest.h>

using granii::lint::Finding;
using granii::lint::lintContent;
using granii::lint::runLint;

namespace {

// Lines are 1-based; fixtures below start with a \n so the first code line
// is line 2 and the planted line numbers stay readable.

TEST(LintNoalloc, FlagsAllocationInsideRegion) {
  const std::string Src = R"(
void hot(std::vector<float> &V, int N) {
  // granii-noalloc-begin
  V.push_back(1.0f);
  float *P = new float[N];
  (void)P;
  // granii-noalloc-end
  V.resize(0);
}
)";
  std::vector<Finding> F = lintContent("src/runtime/Hot.cpp", Src);
  ASSERT_EQ(F.size(), 2u);
  EXPECT_EQ(F[0].Rule, "noalloc");
  EXPECT_EQ(F[0].Line, 4);
  EXPECT_NE(F[0].Message.find("push_back"), std::string::npos);
  EXPECT_EQ(F[1].Rule, "noalloc");
  EXPECT_EQ(F[1].Line, 5);
  EXPECT_NE(F[1].Message.find("new"), std::string::npos);
}

TEST(LintNoalloc, UnterminatedRegionIsItselfAFinding) {
  const std::string Src = R"(
// granii-noalloc-begin
void f() {}
)";
  std::vector<Finding> F = lintContent("src/runtime/Hot.cpp", Src);
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0].Rule, "noalloc");
  EXPECT_EQ(F[0].Line, 2);
  EXPECT_NE(F[0].Message.find("unterminated"), std::string::npos);
}

TEST(LintNoalloc, DeletedFunctionsAndRegionFreeCodePass) {
  const std::string Src = R"(
struct S {
  S(const S &) = delete;
};
void cold(std::vector<float> &V) { V.push_back(1.0f); }
)";
  EXPECT_TRUE(lintContent("src/runtime/Cold.cpp", Src).empty());
  const std::string Deleted = R"(
// granii-noalloc-begin
struct S {
  S(const S &) = delete;
};
// granii-noalloc-end
)";
  EXPECT_TRUE(lintContent("src/runtime/Cold.cpp", Deleted).empty());
}

TEST(LintCheckedParse, FlagsUncheckedParseOutsideStr) {
  const std::string Src = R"(
int parse(const char *S) {
  return atoi(S);
}
)";
  std::vector<Finding> F = lintContent("src/graph/Load.cpp", Src);
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0].Rule, "checked-parse");
  EXPECT_EQ(F[0].Line, 3);
  // The home of the checked helpers is exempt.
  EXPECT_TRUE(lintContent("src/support/Str.cpp", Src).empty());
}

TEST(LintCheckedParse, LiteralsAndCommentsNeverTokenize) {
  const std::string Src = R"(
// atoi(x) in a comment is fine
const char *Doc = "call atoi(x) for fun";
const char *Raw = R"doc(strtol(p, q, 10))doc";
)";
  EXPECT_TRUE(lintContent("src/graph/Load.cpp", Src).empty());
}

TEST(LintKernelAssert, RawAssertOnlyFlaggedUnderKernels) {
  const std::string Src = R"(
void k(int N) {
  assert(N > 0);
  static_assert(sizeof(int) == 4, "abi");
}
)";
  std::vector<Finding> F = lintContent("src/kernels/K.cpp", Src);
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0].Rule, "kernel-assert");
  EXPECT_EQ(F[0].Line, 3);
  EXPECT_TRUE(lintContent("src/graph/K.cpp", Src).empty());
}

TEST(LintUnorderedIter, FlagsRangeForAndBeginInScopedDirs) {
  const std::string Src = R"(
double total(const std::unordered_map<std::string, double> &In) {
  std::unordered_map<std::string, double> Cost = In;
  double T = 0;
  for (const auto &KV : Cost)
    T += KV.second;
  auto It = Cost.begin();
  return T + It->second;
}
)";
  std::vector<Finding> F = lintContent("src/cost/Model.cpp", Src);
  ASSERT_EQ(F.size(), 2u);
  EXPECT_EQ(F[0].Rule, "unordered-iter");
  EXPECT_EQ(F[0].Line, 5);
  EXPECT_EQ(F[1].Rule, "unordered-iter");
  EXPECT_EQ(F[1].Line, 7);
  // Outside the determinism-scoped directories the same code passes.
  EXPECT_TRUE(lintContent("src/serve/Model.cpp", Src).empty());
}

TEST(LintUnorderedIter, MembershipOnlyUsePasses) {
  const std::string Src = R"(
bool seen(const std::string &K) {
  std::unordered_set<std::string> Seen;
  Seen.insert(K);
  return Seen.count(K) != 0;
}
)";
  EXPECT_TRUE(lintContent("src/assoc/Enum.cpp", Src).empty());
}

TEST(LintIntoDstCheck, FlagsUncheckedKernelDefinition) {
  const std::string Src = R"(
void fooInto(float *Dst, int N) {
  for (int I = 0; I < N; ++I)
    Dst[I] = 0.0f;
}
)";
  std::vector<Finding> F = lintContent("src/kernels/K.cpp", Src);
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0].Rule, "into-dst-check");
  EXPECT_EQ(F[0].Line, 2);
  EXPECT_NE(F[0].Message.find("fooInto"), std::string::npos);
}

TEST(LintIntoDstCheck, CheckedDelegatingAndDeclaredKernelsPass) {
  const std::string Src = R"(
void aInto(float *Dst, int N);
void bInto(float *Dst, int N) {
  GRANII_CHECK(N >= 0, "n");
  Dst[0] = 0.0f;
}
void cInto(float *Dst, int N) {
  checkVecDst(Dst, N, "c");
  Dst[0] = 0.0f;
}
void dInto(float *Dst, int N) {
  bInto(Dst, N);
}
)";
  EXPECT_TRUE(lintContent("src/kernels/K.cpp", Src).empty());
}

TEST(LintSuppression, AllowDirectiveOnSameOrPreviousLine) {
  const std::string SameLine = R"(
int parse(const char *S) {
  return atoi(S); // granii-lint-allow(checked-parse)
}
)";
  EXPECT_TRUE(lintContent("src/graph/Load.cpp", SameLine).empty());
  const std::string PrevLine = R"(
int parse(const char *S) {
  // granii-lint-allow(checked-parse)
  return atoi(S);
}
)";
  EXPECT_TRUE(lintContent("src/graph/Load.cpp", PrevLine).empty());
  // The directive only disarms the named rule.
  const std::string WrongRule = R"(
int parse(const char *S) {
  return atoi(S); // granii-lint-allow(noalloc)
}
)";
  EXPECT_EQ(lintContent("src/graph/Load.cpp", WrongRule).size(), 1u);
}

TEST(LintDriver, RenderAndExitCodes) {
  Finding F{"src/a.cpp", 7, "noalloc", "boom"};
  EXPECT_EQ(F.render(), "src/a.cpp:7: error: [noalloc] boom");

  std::string Out, Err;
  EXPECT_EQ(runLint({}, Out, Err), 2);
  EXPECT_NE(Err.find("usage:"), std::string::npos);

  Out.clear();
  Err.clear();
  EXPECT_EQ(runLint({"--list-rules"}, Out, Err), 0);
  EXPECT_NE(Out.find("into-dst-check"), std::string::npos);

  Out.clear();
  Err.clear();
  EXPECT_EQ(runLint({"/nonexistent/granii"}, Out, Err), 2);
  EXPECT_NE(Err.find("no such file"), std::string::npos);
}

} // namespace
