//===- EnumerateTests.cpp - Tests for association-tree enumeration ----------===//

#include "assoc/Enumerate.h"
#include "ir/Rewrite.h"
#include "models/Baselines.h"
#include "models/Models.h"

#include <gtest/gtest.h>

#include <set>

using namespace granii;

namespace {

size_t countSteps(const CompositionPlan &Plan, StepOp Op) {
  size_t Count = 0;
  for (const PlanStep &Step : Plan.Steps)
    Count += Step.Op == Op;
  return Count;
}

} // namespace

TEST(Enumerate, SingleGemmChain) {
  IRNodeRef Root = ir::matMul({ir::featuresLeaf(), ir::weightLeaf()});
  auto Plans = enumerateCompositions(Root);
  ASSERT_EQ(Plans.size(), 1u);
  EXPECT_EQ(Plans[0].Steps.size(), 1u);
  EXPECT_EQ(Plans[0].Steps[0].Op, StepOp::Gemm);
}

TEST(Enumerate, ThreeDenseOperandsGiveTwoAssociations) {
  IRNodeRef H = ir::featuresLeaf();
  // H (N x Kin) * W1 (Kin x Kout) * W2 (Kout x Kout).
  IRNodeRef W1 = ir::weightLeaf("W1");
  IRNodeRef W2 = ir::weightLeafWithShape("W2", {SymDim::kOut(), SymDim::kOut()});
  auto Plans = enumerateCompositions(ir::matMul({H, W1, W2}));
  EXPECT_EQ(Plans.size(), 2u); // (HW1)W2 and H(W1W2).
}

TEST(Enumerate, SparseSparseChainIsDeadEnd) {
  // A * A * H admits only right-to-left association (no SpGEMM rule).
  IRNodeRef Root = ir::matMul(
      {ir::adjacencyLeaf(), ir::adjacencyLeaf(), ir::featuresLeaf()});
  auto Plans = enumerateCompositions(Root);
  ASSERT_EQ(Plans.size(), 1u);
  ASSERT_EQ(Plans[0].Steps.size(), 2u);
  EXPECT_EQ(Plans[0].Steps[0].Op, StepOp::SpmmUnweighted);
  EXPECT_EQ(Plans[0].Steps[1].Op, StepOp::SpmmUnweighted);
}

TEST(Enumerate, GcnCountsMatchStructure) {
  GnnModel M = makeModel(ModelKind::GCN);
  auto Plans = enumerateCompositions(M.Root);
  EXPECT_EQ(Plans.size(), 16u);
  // Both paper §III-A compositions appear: dynamic normalization (no
  // sparse scaling) and precomputed \tilde{N} (fused two-sided scaling).
  bool AnyDynamic = false, AnyPrecompute = false;
  for (const CompositionPlan &P : Plans) {
    AnyDynamic |= !planUsesPrecompute(P);
    AnyPrecompute |= countSteps(P, StepOp::SddmmScaleBoth) == 1;
  }
  EXPECT_TRUE(AnyDynamic);
  EXPECT_TRUE(AnyPrecompute);
}

TEST(Enumerate, GatExactlyReuseAndRecompute) {
  GnnModel M = makeModel(ModelKind::GAT);
  auto Plans = enumerateCompositions(M.Root);
  ASSERT_EQ(Plans.size(), 2u); // Paper §VI-B: 2 compositions for GAT.
  size_t Reuse = 0, Recompute = 0;
  for (const CompositionPlan &P : Plans) {
    if (planRecomputesTheta(P))
      ++Recompute;
    else
      ++Reuse;
  }
  EXPECT_EQ(Reuse, 1u);
  EXPECT_EQ(Recompute, 1u);
}

TEST(Enumerate, GatReusePlanSharesThetaGemm) {
  GnnModel M = makeModel(ModelKind::GAT);
  auto Plans = enumerateCompositions(M.Root);
  for (const CompositionPlan &P : Plans) {
    size_t Gemms = countSteps(P, StepOp::Gemm);
    if (planRecomputesTheta(P))
      EXPECT_EQ(Gemms, 2u); // Theta GEMM + post-aggregation GEMM.
    else
      EXPECT_EQ(Gemms, 1u); // CSE: one shared Theta GEMM.
  }
}

TEST(Enumerate, GinContainsUpdateFirstAndAggregateFirst) {
  GnnModel M = makeModel(ModelKind::GIN);
  auto Plans = enumerateCompositions(M.Root);
  bool UpdateFirst = false, AggregateFirst = false;
  for (const CompositionPlan &P : Plans) {
    if (planIsUpdateFirst(P))
      UpdateFirst = true;
    else
      AggregateFirst = true;
  }
  EXPECT_TRUE(UpdateFirst);
  EXPECT_TRUE(AggregateFirst);
}

TEST(Enumerate, GinUpdateFirstSharesGemmViaScalePullOut) {
  GnnModel M = makeModel(ModelKind::GIN);
  auto Plans = enumerateCompositions(M.Root);
  // The efficient update-first GIN has exactly one GEMM: (1+eps)(HW)+A(HW).
  bool SingleGemmUpdateFirst = false;
  for (const CompositionPlan &P : Plans)
    if (planIsUpdateFirst(P) && countSteps(P, StepOp::Gemm) == 1)
      SingleGemmUpdateFirst = true;
  EXPECT_TRUE(SingleGemmUpdateFirst);
}

TEST(Enumerate, AllPlansVerifyAndDeduplicate) {
  for (ModelKind Kind : allModels()) {
    GnnModel M = makeModel(Kind);
    auto Plans = enumerateCompositions(M.Root);
    std::set<std::string> Keys;
    for (const CompositionPlan &P : Plans) {
      P.verify();
      EXPECT_TRUE(Keys.insert(P.canonicalKey()).second)
          << "duplicate plan in " << M.Name;
    }
  }
}

TEST(Enumerate, SetupFlagsMarkGraphOnlySteps) {
  GnnModel M = makeModel(ModelKind::GCN);
  auto Plans = enumerateCompositions(M.Root);
  for (const CompositionPlan &P : Plans) {
    for (const PlanStep &Step : P.Steps) {
      if (Step.Op == StepOp::DegreeOffsets || Step.Op == StepOp::InvSqrtVec ||
          Step.Op == StepOp::SddmmScaleBoth) {
        EXPECT_TRUE(Step.Setup) << stepOpName(Step.Op);
      }
      if (Step.Op == StepOp::Gemm || Step.Op == StepOp::SpmmUnweighted ||
          Step.Op == StepOp::Relu) {
        EXPECT_FALSE(Step.Setup) << stepOpName(Step.Op);
      }
    }
  }
}

TEST(Enumerate, HoistingDisabledMarksNothingSetup) {
  GnnModel M = makeModel(ModelKind::GCN);
  EnumOptions Opts;
  Opts.HoistGraphOnlySteps = false;
  for (const CompositionPlan &P : enumerateCompositions(M.Root, Opts))
    for (const PlanStep &Step : P.Steps)
      EXPECT_FALSE(Step.Setup);
}

TEST(Enumerate, BinningOptionSwitchesDegreeKernel) {
  GnnModel M = makeModel(ModelKind::GCN);
  EnumOptions Opts;
  Opts.UseBinningDegree = true;
  for (const CompositionPlan &P : enumerateCompositions(M.Root, Opts)) {
    EXPECT_EQ(countSteps(P, StepOp::DegreeOffsets), 0u);
    EXPECT_GE(countSteps(P, StepOp::DegreeBinning), 1u);
  }
}

TEST(Enumerate, TernaryAblationRemovesFusedScaling) {
  GnnModel M = makeModel(ModelKind::GCN);
  EnumOptions Opts;
  Opts.EnableTernaryRule = false;
  for (const CompositionPlan &P : enumerateCompositions(M.Root, Opts))
    EXPECT_EQ(countSteps(P, StepOp::SddmmScaleBoth), 0u);
}

TEST(Enumerate, DistributionAblationShrinksGin) {
  GnnModel M = makeModel(ModelKind::GIN);
  EnumOptions NoDist;
  NoDist.EnableDistribution = false;
  size_t WithDist = enumerateCompositions(M.Root).size();
  size_t WithoutDist = enumerateCompositions(M.Root, NoDist).size();
  EXPECT_GT(WithDist, WithoutDist);
}

TEST(Enumerate, MaxPlansCapRespected) {
  GnnModel M = makeModel(ModelKind::SGC);
  EnumOptions Opts;
  Opts.MaxPlans = 10;
  EXPECT_LE(enumerateCompositions(M.Root, Opts).size(), 10u);
}

TEST(Enumerate, SgcMultiHopScales) {
  GnnModel Sgc3 = makeModel(ModelKind::SGC, 3);
  auto Plans = enumerateCompositions(Sgc3.Root);
  EXPECT_GT(Plans.size(), 20u);
  for (const CompositionPlan &P : Plans)
    P.verify();
}

TEST(Enumerate, TagcnCrossTermCseSharesNormalizedAdjacency) {
  GnnModel M = makeModel(ModelKind::TAGCN, 2);
  auto Plans = enumerateCompositions(M.Root);
  // Some plan computes the normalized adjacency once and feeds both hops.
  bool SharedNorm = false;
  for (const CompositionPlan &P : Plans) {
    size_t ScaleBoth = countSteps(P, StepOp::SddmmScaleBoth);
    size_t Spmms = countSteps(P, StepOp::SpmmWeighted);
    if (ScaleBoth == 1 && Spmms >= 3)
      SharedNorm = true; // One \tilde{N}, three aggregations through it.
  }
  EXPECT_TRUE(SharedNorm);
}
