//===- ShardTests.cpp - Partitioner, shard blocks, sharded kernels --------===//
///
/// Unit tests for the sharded-execution subsystem: golden edge-cut fixtures
/// on hand-built graphs, permutation round-trips, degenerate shard counts,
/// save/load round-trips of the mmap store, corruption/truncation death
/// tests, and bitwise equality of the sharded kernels against the
/// whole-graph SpMM at several shard and thread counts.
///
//===----------------------------------------------------------------------===//

#include "shard/Shard.h"
#include "shard/ShardExec.h"

#include "graph/Generators.h"
#include "kernels/FormatKernels.h"
#include "kernels/Kernels.h"
#include "support/ThreadPool.h"
#include "tensor/CooMatrix.h"
#include "tensor/CscMatrix.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

using namespace granii;

namespace {

/// Deterministic pseudo-random fill so comparisons are reproducible.
void fillMatrix(DenseMatrix &M, uint64_t Seed) {
  uint64_t State = Seed * 6364136223846793005ull + 1442695040888963407ull;
  for (int64_t R = 0; R < M.rows(); ++R)
    for (int64_t C = 0; C < M.cols(); ++C) {
      State = State * 6364136223846793005ull + 1442695040888963407ull;
      M.at(R, C) = static_cast<float>((State >> 40) & 0xffff) / 8192.0f - 4.0f;
    }
}

std::vector<float> randomEdgeValues(int64_t Nnz, uint64_t Seed) {
  std::vector<float> Vals(static_cast<size_t>(Nnz));
  uint64_t State = Seed;
  for (auto &V : Vals) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    V = static_cast<float>((State >> 44) & 0xfff) / 1024.0f - 2.0f;
  }
  return Vals;
}

void expectValidPartition(const shard::GraphPartition &P, int64_t Nodes) {
  ASSERT_EQ(P.ShardOf.size(), static_cast<size_t>(Nodes));
  ASSERT_EQ(P.Owned.size(), static_cast<size_t>(P.NumShards));
  std::vector<char> Seen(static_cast<size_t>(Nodes), 0);
  for (int S = 0; S < P.NumShards; ++S) {
    int32_t Prev = -1;
    for (int32_t V : P.Owned[static_cast<size_t>(S)]) {
      ASSERT_GT(V, Prev) << "owned ids must be ascending";
      ASSERT_LT(V, Nodes);
      ASSERT_EQ(P.ShardOf[static_cast<size_t>(V)], S);
      ASSERT_FALSE(Seen[static_cast<size_t>(V)]);
      Seen[static_cast<size_t>(V)] = 1;
      Prev = V;
    }
  }
  for (char C : Seen)
    EXPECT_TRUE(C) << "every vertex must be owned by exactly one shard";
}

bool bitwiseEqual(const DenseMatrix &A, const DenseMatrix &B) {
  if (A.rows() != B.rows() || A.cols() != B.cols())
    return false;
  return std::memcmp(A.data(), B.data(),
                     sizeof(float) * static_cast<size_t>(A.rows()) *
                         static_cast<size_t>(A.cols())) == 0;
}

/// Two K5 cliques joined by a single bridge edge: the minimum 2-way cut is
/// the bridge (2 directed stored edges).
CsrMatrix twoCliquesWithBridge() {
  CooMatrix Coo(10, 10);
  for (int Base : {0, 5})
    for (int I = 0; I < 5; ++I)
      for (int J = I + 1; J < 5; ++J)
        Coo.addSymmetric(Base + I, Base + J);
  Coo.addSymmetric(4, 5); // bridge
  return Coo.toCsr();
}

TEST(ShardPartition, GoldenCutTwoCliquesBridge) {
  CsrMatrix Adj = twoCliquesWithBridge();
  shard::GraphPartition P = shard::partitionGraph(Adj, 2);
  expectValidPartition(P, Adj.rows());
  EXPECT_EQ(P.NumShards, 2);
  EXPECT_EQ(P.TotalEdges, Adj.nnz());
  // The partitioner must find the bridge: exactly the two directed bridge
  // edges are cut, and each clique lands whole in one shard.
  EXPECT_EQ(P.CutEdges, 2);
  EXPECT_EQ(P.Owned[0].size(), 5u);
  EXPECT_EQ(P.Owned[1].size(), 5u);
  for (int V = 0; V < 5; ++V)
    EXPECT_EQ(P.ShardOf[static_cast<size_t>(V)],
              P.ShardOf[0]);
  for (int V = 5; V < 10; ++V)
    EXPECT_EQ(P.ShardOf[static_cast<size_t>(V)], P.ShardOf[9]);
  EXPECT_NE(P.ShardOf[0], P.ShardOf[9]);
  EXPECT_DOUBLE_EQ(P.cutFraction(), 2.0 / static_cast<double>(Adj.nnz()));
}

TEST(ShardPartition, GoldenCutPathGraph) {
  // A path of 8 vertices split in two: any contiguous split cuts exactly
  // one undirected edge (2 stored directed edges).
  CooMatrix Coo(8, 8);
  for (int V = 0; V + 1 < 8; ++V)
    Coo.addSymmetric(V, V + 1);
  CsrMatrix Adj = Coo.toCsr();
  shard::GraphPartition P = shard::partitionGraph(Adj, 2);
  expectValidPartition(P, 8);
  EXPECT_EQ(P.CutEdges, 2);
  EXPECT_EQ(P.Owned[0].size(), 4u);
  EXPECT_EQ(P.Owned[1].size(), 4u);
}

TEST(ShardPartition, DeterministicAcrossCalls) {
  Graph G = makeRmat(600, 6000, 0.5, 0.2, 0.2, 7, "det");
  shard::GraphPartition A = shard::partitionGraph(G.adjacency(), 4);
  shard::GraphPartition B = shard::partitionGraph(G.adjacency(), 4);
  EXPECT_EQ(A.ShardOf, B.ShardOf);
  EXPECT_EQ(A.CutEdges, B.CutEdges);
}

TEST(ShardPartition, SingleShardDegenerate) {
  Graph G = makeRmat(100, 600, 0.5, 0.2, 0.2, 3, "one");
  shard::GraphPartition P = shard::partitionGraph(G.adjacency(), 1);
  expectValidPartition(P, 100);
  EXPECT_EQ(P.NumShards, 1);
  EXPECT_EQ(P.CutEdges, 0);
  EXPECT_EQ(P.Owned[0].size(), 100u);
  EXPECT_DOUBLE_EQ(P.cutFraction(), 0.0);
}

TEST(ShardPartition, ClampsShardCountToNodes) {
  CooMatrix Coo(3, 3);
  Coo.addSymmetric(0, 1);
  Coo.addSymmetric(1, 2);
  CsrMatrix Adj = Coo.toCsr();
  shard::GraphPartition P = shard::partitionGraph(Adj, 8);
  expectValidPartition(P, 3);
  EXPECT_EQ(P.NumShards, 3);
}

TEST(ShardPartition, EmptyGraph) {
  CsrMatrix Adj; // 0 x 0
  shard::GraphPartition P = shard::partitionGraph(Adj, 4);
  EXPECT_EQ(P.NumShards, 1);
  EXPECT_TRUE(P.ShardOf.empty());
  EXPECT_EQ(P.CutEdges, 0);
  EXPECT_DOUBLE_EQ(P.cutFraction(), 0.0);
}

TEST(ShardPartition, IsolatedVerticesAllOwned) {
  // Vertices with no edges must still be assigned somewhere.
  CooMatrix Coo(12, 12);
  Coo.addSymmetric(0, 1); // the only edge; 2..11 are isolated
  CsrMatrix Adj = Coo.toCsr();
  shard::GraphPartition P = shard::partitionGraph(Adj, 3);
  expectValidPartition(P, 12);
}

TEST(ShardPartition, PermutationRoundTrip) {
  Graph G = makeRmat(400, 3000, 0.55, 0.15, 0.15, 11, "perm");
  shard::GraphPartition P = shard::partitionGraph(G.adjacency(), 4);
  Permutation Perm = shard::shardPermutation(P);
  ASSERT_EQ(Perm.size(), 400);
  // Shard-major: walking new ids in order visits shard 0's vertices first.
  int32_t PrevShard = 0;
  for (int64_t NewId = 0; NewId < Perm.size(); ++NewId) {
    int32_t S = P.ShardOf[static_cast<size_t>(
        Perm.newToOld(NewId))];
    EXPECT_GE(S, PrevShard) << "permutation must be shard-major";
    PrevShard = S;
  }
  // Round trip through the inverse is the identity.
  Permutation Inv = Perm.inverse();
  for (int32_t V = 0; V < 400; ++V) {
    EXPECT_EQ(Perm.newToOld(Perm.oldToNew(V)), V);
    EXPECT_EQ(Inv.newToOld(V), Perm.oldToNew(V));
  }
}

TEST(ShardAuto, CountThresholds) {
  EXPECT_EQ(shard::autoShardCount(0), 0);
  EXPECT_EQ(shard::autoShardCount(1000000), 0);
  EXPECT_GE(shard::autoShardCount(int64_t(1) << 21), 2);
  EXPECT_EQ(shard::autoShardCount(int64_t(64) << 20), 4);
  EXPECT_EQ(shard::autoShardCount(int64_t(1) << 40), 16) << "clamped";
}

TEST(ShardAuto, AnnotateStats) {
  Graph G = makeRmat(300, 2400, 0.5, 0.2, 0.2, 5, "ann");
  GraphStats Stats = G.stats();
  EXPECT_DOUBLE_EQ(Stats.ShardCount, 1.0);
  EXPECT_DOUBLE_EQ(Stats.ShardEdgeCutFraction, 0.0);
  shard::annotateShardStats(Stats, G.adjacency(), 4);
  EXPECT_DOUBLE_EQ(Stats.ShardCount, 4.0);
  EXPECT_GT(Stats.ShardEdgeCutFraction, 0.0);
  EXPECT_LT(Stats.ShardEdgeCutFraction, 1.0);
}

//===----------------------------------------------------------------------===//
// Shard blocks
//===----------------------------------------------------------------------===//

TEST(ShardBlocks, StructureMatchesCsr) {
  Graph G = makeRmat(250, 1800, 0.55, 0.15, 0.15, 13, "blk");
  const CsrMatrix &Adj = G.adjacency();
  shard::GraphPartition P = shard::partitionGraph(Adj, 3);
  shard::ShardSet Set = shard::ShardSet::build(Adj, P);
  ASSERT_EQ(Set.numShards(), 3);
  EXPECT_EQ(Set.numNodes(), Adj.rows());
  EXPECT_EQ(Set.nnz(), Adj.nnz());
  EXPECT_FALSE(Set.mapped());

  int64_t RowsSeen = 0, EntriesSeen = 0;
  for (const shard::ShardBlockView &B : Set.blocks()) {
    ASSERT_EQ(B.RowOffsets.size(), B.OwnedRows.size() + 1);
    for (size_t R = 0; R < B.OwnedRows.size(); ++R) {
      int32_t Row = B.OwnedRows[R];
      int64_t Begin = Adj.rowOffsets()[static_cast<size_t>(Row)];
      int64_t End = Adj.rowOffsets()[static_cast<size_t>(Row) + 1];
      // Same number of entries as the CSR row, in the same order, with
      // local columns resolving back to the original global columns.
      ASSERT_EQ(B.RowOffsets[R + 1] - B.RowOffsets[R], End - Begin);
      EXPECT_EQ(B.ValBase[R], Begin);
      for (int64_t E = Begin; E < End; ++E) {
        int32_t Slot = B.LocalCols[static_cast<size_t>(
            B.RowOffsets[R] + (E - Begin))];
        ASSERT_GE(Slot, 0);
        ASSERT_LT(static_cast<size_t>(Slot), B.Referenced.size());
        EXPECT_EQ(B.Referenced[static_cast<size_t>(Slot)],
                  Adj.colIndices()[static_cast<size_t>(E)]);
      }
    }
    for (size_t I = 1; I < B.Referenced.size(); ++I)
      EXPECT_LT(B.Referenced[I - 1], B.Referenced[I]);
    RowsSeen += static_cast<int64_t>(B.OwnedRows.size());
    EntriesSeen += static_cast<int64_t>(B.LocalCols.size());
  }
  EXPECT_EQ(RowsSeen, Adj.rows());
  EXPECT_EQ(EntriesSeen, Adj.nnz());
}

TEST(ShardBlocks, BackwardSliceMatchesCsc) {
  Graph G = makeRmat(200, 1500, 0.5, 0.2, 0.2, 17, "bwd");
  CsrMatrix Adj = G.adjacency();
  Adj.setValues(randomEdgeValues(Adj.nnz(), 23));
  shard::GraphPartition P = shard::partitionGraph(Adj, 4);
  shard::ShardSet Set = shard::ShardSet::build(Adj, P);
  CscMatrix Csc = CscMatrix::fromCsr(Adj);

  for (const shard::ShardBlockView &B : Set.blocks()) {
    ASSERT_EQ(B.ColOffsets.size(), B.OwnedCols.size() + 1);
    for (size_t C = 0; C < B.OwnedCols.size(); ++C) {
      int32_t Col = B.OwnedCols[C];
      int64_t Begin = Csc.colOffsets()[static_cast<size_t>(Col)];
      int64_t End = Csc.colOffsets()[static_cast<size_t>(Col) + 1];
      ASSERT_EQ(B.ColOffsets[C + 1] - B.ColOffsets[C], End - Begin);
      for (int64_t E = Begin; E < End; ++E) {
        size_t Local = static_cast<size_t>(B.ColOffsets[C] + (E - Begin));
        // Same global row, same CSR value index, in the CSC's order.
        EXPECT_EQ(B.GradReferenced[static_cast<size_t>(B.RowSlots[Local])],
                  Csc.rowIndices()[static_cast<size_t>(E)]);
        EXPECT_EQ(B.CsrIdx[Local],
                  Csc.csrIndices()[static_cast<size_t>(E)]);
      }
    }
  }
}

TEST(ShardBlocks, EmptyShardsExecuteAsNoOps) {
  // 3 nodes, 8 requested shards -> clamped to 3; build still works and the
  // sharded product matches the whole-graph one.
  CooMatrix Coo(3, 3);
  Coo.addSymmetric(0, 1);
  CsrMatrix Adj = Coo.toCsr();
  shard::GraphPartition P = shard::partitionGraph(Adj, 8);
  shard::ShardSet Set = shard::ShardSet::build(Adj, P);
  DenseMatrix B(3, 4), Want(3, 4), Got(3, 4);
  fillMatrix(B, 31);
  kernels::spmmInto(Adj, B, Semiring::plusCopy(), Want);
  shard::ShardStaging Stage;
  shard::shardedSpmmInto(Set, Stage, Adj.values(), B, Semiring::plusCopy(),
                         Got);
  EXPECT_TRUE(bitwiseEqual(Want, Got));
}

//===----------------------------------------------------------------------===//
// Sharded kernels: bitwise vs whole-graph
//===----------------------------------------------------------------------===//

class ShardKernelBitwise : public ::testing::Test {
protected:
  void TearDown() override { ThreadPool::get().setNumThreads(0); }
};

TEST_F(ShardKernelBitwise, ForwardAllSemirings) {
  Graph G = makeRmat(500, 5000, 0.55, 0.15, 0.15, 41, "fw");
  CsrMatrix Adj = G.adjacency();
  Adj.setValues(randomEdgeValues(Adj.nnz(), 77));
  DenseMatrix B(Adj.rows(), 24);
  fillMatrix(B, 9);

  const Semiring Rings[] = {Semiring::plusTimes(), Semiring::plusCopy(),
                            Semiring::meanCopy(), Semiring::maxCopy(),
                            {ReduceOpKind::Min, CombineOpKind::Mul},
                            {ReduceOpKind::Sum, CombineOpKind::Add}};
  for (const Semiring &S : Rings) {
    DenseMatrix Want(Adj.rows(), 24);
    kernels::spmmInto(Adj, B, S, Want);
    for (int Shards : {1, 2, 4, 7}) {
      shard::GraphPartition P = shard::partitionGraph(Adj, Shards);
      shard::ShardSet Set = shard::ShardSet::build(Adj, P);
      for (int Threads : {1, 4}) {
        ThreadPool::get().setNumThreads(Threads);
        shard::ShardStaging Stage;
        DenseMatrix Got(Adj.rows(), 24);
        fillMatrix(Got, 999); // poison: kernel must fully overwrite
        shard::shardedSpmmInto(Set, Stage, Adj.values(), B, S, Got);
        EXPECT_TRUE(bitwiseEqual(Want, Got))
            << "semiring " << semiringName(S) << " shards " << Shards
            << " threads " << Threads;
      }
    }
  }
}

TEST_F(ShardKernelBitwise, ForwardUnweighted) {
  Graph G = makeRmat(300, 2500, 0.5, 0.2, 0.2, 51, "uw");
  const CsrMatrix &Adj = G.adjacency();
  ASSERT_TRUE(Adj.values().empty());
  DenseMatrix B(Adj.rows(), 16);
  fillMatrix(B, 3);
  for (const Semiring &S : {Semiring::plusTimes(), Semiring::meanCopy()}) {
    DenseMatrix Want(Adj.rows(), 16);
    kernels::spmmInto(Adj, B, S, Want);
    shard::GraphPartition P = shard::partitionGraph(Adj, 3);
    shard::ShardSet Set = shard::ShardSet::build(Adj, P);
    shard::ShardStaging Stage;
    DenseMatrix Got(Adj.rows(), 16);
    shard::shardedSpmmInto(Set, Stage, Adj.values(), B, S, Got);
    EXPECT_TRUE(bitwiseEqual(Want, Got)) << semiringName(S);
  }
}

TEST_F(ShardKernelBitwise, BackwardTransposed) {
  Graph G = makeRmat(400, 3600, 0.55, 0.15, 0.15, 61, "bw");
  CsrMatrix Adj = G.adjacency();
  Adj.setValues(randomEdgeValues(Adj.nnz(), 87));
  CscMatrix Csc = CscMatrix::fromCsr(Adj);
  DenseMatrix DY(Adj.rows(), 20);
  fillMatrix(DY, 15);

  const Semiring Rings[] = {Semiring::plusTimes(), Semiring::plusCopy(),
                            Semiring::meanCopy()};
  for (const Semiring &S : Rings) {
    DenseMatrix Want(Adj.rows(), 20);
    kernels::spmmCscTransposedInto(Csc, Adj.values(), DY, S, Want);
    for (int Shards : {2, 4}) {
      shard::GraphPartition P = shard::partitionGraph(Adj, Shards);
      shard::ShardSet Set = shard::ShardSet::build(Adj, P);
      for (int Threads : {1, 4}) {
        ThreadPool::get().setNumThreads(Threads);
        shard::ShardStaging Stage;
        DenseMatrix Got(Adj.rows(), 20);
        fillMatrix(Got, 999);
        shard::shardedSpmmCscTransposedInto(Set, Stage, Adj.values(), DY, S,
                                            Got);
        EXPECT_TRUE(bitwiseEqual(Want, Got))
            << "semiring " << semiringName(S) << " shards " << Shards
            << " threads " << Threads;
      }
    }
  }
}

TEST_F(ShardKernelBitwise, StagingReachesSteadyState) {
  Graph G = makeRmat(300, 2400, 0.5, 0.2, 0.2, 71, "ss");
  const CsrMatrix &Adj = G.adjacency();
  shard::GraphPartition P = shard::partitionGraph(Adj, 4);
  shard::ShardSet Set = shard::ShardSet::build(Adj, P);
  shard::ShardStaging Stage;
  EXPECT_GT(Stage.ensureForward(Set, 32), 0u) << "cold start grows";
  EXPECT_EQ(Stage.ensureForward(Set, 32), 0u);
  EXPECT_EQ(Stage.ensureForward(Set, 16), 0u)
      << "narrower steps reuse the high-water capacity";
  EXPECT_GT(Stage.ensureForward(Set, 64), 0u) << "wider steps grow once";
  EXPECT_EQ(Stage.ensureForward(Set, 64), 0u);
  EXPECT_GT(Stage.ensureBackward(Set, 64), 0u);
  EXPECT_EQ(Stage.ensureBackward(Set, 64), 0u);
}

//===----------------------------------------------------------------------===//
// mmap store
//===----------------------------------------------------------------------===//

class ShardStore : public ::testing::Test {
protected:
  std::string Path;
  void SetUp() override {
    Path = ::testing::TempDir() + "shard_store_" +
           std::to_string(reinterpret_cast<uintptr_t>(this)) + ".grshard";
  }
  void TearDown() override { std::remove(Path.c_str()); }

  static std::vector<char> slurp(const std::string &P) {
    std::ifstream In(P, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  }
  static void spill(const std::string &P, const std::vector<char> &Bytes) {
    std::ofstream Out(P, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }
};

TEST_F(ShardStore, SaveLoadRoundTrip) {
  Graph G = makeRmat(350, 3000, 0.55, 0.15, 0.15, 91, "st");
  CsrMatrix Adj = G.adjacency();
  Adj.setValues(randomEdgeValues(Adj.nnz(), 19));
  shard::GraphPartition P = shard::partitionGraph(Adj, 4);
  shard::ShardSet Built = shard::ShardSet::build(Adj, P);
  std::string Err;
  ASSERT_TRUE(Built.save(Path, &Err)) << Err;

  shard::ShardSet Loaded = shard::ShardSet::load(Path);
  EXPECT_TRUE(Loaded.mapped());
  ASSERT_EQ(Loaded.numShards(), Built.numShards());
  EXPECT_EQ(Loaded.numNodes(), Built.numNodes());
  EXPECT_EQ(Loaded.nnz(), Built.nnz());
  for (int S = 0; S < Built.numShards(); ++S) {
    const auto &A = Built.blocks()[static_cast<size_t>(S)];
    const auto &B = Loaded.blocks()[static_cast<size_t>(S)];
    EXPECT_TRUE(std::equal(A.OwnedRows.begin(), A.OwnedRows.end(),
                           B.OwnedRows.begin(), B.OwnedRows.end()));
    EXPECT_TRUE(std::equal(A.LocalCols.begin(), A.LocalCols.end(),
                           B.LocalCols.begin(), B.LocalCols.end()));
    EXPECT_TRUE(std::equal(A.CsrIdx.begin(), A.CsrIdx.end(), B.CsrIdx.begin(),
                           B.CsrIdx.end()));
  }

  // A loaded (mapped) set executes bitwise identically to the built one.
  DenseMatrix B(Adj.rows(), 12), Want(Adj.rows(), 12), Got(Adj.rows(), 12);
  fillMatrix(B, 5);
  shard::ShardStaging S1, S2;
  shard::shardedSpmmInto(Built, S1, Adj.values(), B, Semiring::plusTimes(),
                         Want);
  shard::shardedSpmmInto(Loaded, S2, Adj.values(), B, Semiring::plusTimes(),
                         Got);
  EXPECT_TRUE(bitwiseEqual(Want, Got));

  // A saved copy of a mapped set round-trips too (save-from-mmap path).
  std::string Path2 = Path + ".copy";
  ASSERT_TRUE(Loaded.save(Path2, &Err)) << Err;
  EXPECT_EQ(slurp(Path), slurp(Path2));
  std::remove(Path2.c_str());
}

using ShardStoreDeath = ShardStore;

TEST_F(ShardStoreDeath, TruncatedFileAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Graph G = makeRmat(120, 900, 0.5, 0.2, 0.2, 33, "tr");
  shard::GraphPartition P = shard::partitionGraph(G.adjacency(), 2);
  shard::ShardSet Built = shard::ShardSet::build(G.adjacency(), P);
  ASSERT_TRUE(Built.save(Path));
  std::vector<char> Bytes = slurp(Path);
  ASSERT_GT(Bytes.size(), 128u);
  Bytes.resize(Bytes.size() / 2);
  spill(Path, Bytes);
  EXPECT_DEATH(shard::ShardSet::load(Path), "shard");
}

TEST_F(ShardStoreDeath, CorruptHeaderAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Graph G = makeRmat(120, 900, 0.5, 0.2, 0.2, 34, "ch");
  shard::GraphPartition P = shard::partitionGraph(G.adjacency(), 2);
  shard::ShardSet Built = shard::ShardSet::build(G.adjacency(), P);
  ASSERT_TRUE(Built.save(Path));
  std::vector<char> Bytes = slurp(Path);
  Bytes[3] ^= 0x40; // damage the magic
  spill(Path, Bytes);
  EXPECT_DEATH(shard::ShardSet::load(Path), "shard");
}

TEST_F(ShardStoreDeath, CorruptPayloadAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Graph G = makeRmat(120, 900, 0.5, 0.2, 0.2, 35, "cp");
  shard::GraphPartition P = shard::partitionGraph(G.adjacency(), 2);
  shard::ShardSet Built = shard::ShardSet::build(G.adjacency(), P);
  ASSERT_TRUE(Built.save(Path));
  std::vector<char> Bytes = slurp(Path);
  // Smash the tail of the payload with out-of-range ids; structural
  // validation must reject the image regardless of which array they hit.
  for (size_t I = Bytes.size() - 64; I < Bytes.size(); ++I)
    Bytes[I] = static_cast<char>(0xff);
  spill(Path, Bytes);
  EXPECT_DEATH(shard::ShardSet::load(Path), "shard");
}

TEST_F(ShardStoreDeath, MissingFileAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(shard::ShardSet::load(Path + ".does-not-exist"), "shard");
}

} // namespace
