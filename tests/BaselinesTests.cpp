//===- BaselinesTests.cpp - Tests for the framework baseline compositions ---===//

#include "models/Baselines.h"
#include "assoc/Enumerate.h"
#include "graph/Generators.h"
#include "runtime/Executor.h"
#include "granii/Granii.h"

#include <gtest/gtest.h>

using namespace granii;

TEST(Baselines, SystemNames) {
  EXPECT_EQ(systemName(BaselineSystem::WiseGraph), "wisegraph");
  EXPECT_EQ(systemName(BaselineSystem::DGL), "dgl");
  EXPECT_EQ(allSystems().size(), 2u);
}

TEST(Baselines, NoStepIsHoisted) {
  // Framework code is straight-line: everything runs every iteration.
  for (BaselineSystem Sys : allSystems())
    for (ModelKind Kind : allModels()) {
      GnnModel M = makeModel(Kind);
      CompositionPlan Plan = baselinePlan(Sys, M, 32, 64);
      for (const PlanStep &Step : Plan.Steps)
        EXPECT_FALSE(Step.Setup) << systemName(Sys) << "/" << M.Name;
    }
}

TEST(Baselines, WiseGraphBinsDegreesDglUsesOffsets) {
  GnnModel Gcn = makeModel(ModelKind::GCN);
  CompositionPlan Wise = baselinePlan(BaselineSystem::WiseGraph, Gcn, 32, 32);
  CompositionPlan Dgl = baselinePlan(BaselineSystem::DGL, Gcn, 32, 32);
  auto Has = [](const CompositionPlan &P, StepOp Op) {
    for (const PlanStep &S : P.Steps)
      if (S.Op == Op)
        return true;
    return false;
  };
  EXPECT_TRUE(Has(Wise, StepOp::DegreeBinning));
  EXPECT_FALSE(Has(Wise, StepOp::DegreeOffsets));
  EXPECT_TRUE(Has(Dgl, StepOp::DegreeOffsets));
  EXPECT_FALSE(Has(Dgl, StepOp::DegreeBinning));
}

TEST(Baselines, BothDefaultToDynamicNormalization) {
  GnnModel Gcn = makeModel(ModelKind::GCN);
  for (BaselineSystem Sys : allSystems()) {
    CompositionPlan Plan = baselinePlan(Sys, Gcn, 64, 64);
    EXPECT_FALSE(planUsesPrecompute(Plan)) << systemName(Sys);
  }
}

TEST(Baselines, ConfigReorderFlipsWithEmbeddingSizes) {
  GnnModel Gcn = makeModel(ModelKind::GCN);
  // K_in > K_out: update (GEMM) first; K_in < K_out: aggregate first ([17]).
  for (BaselineSystem Sys : allSystems()) {
    EXPECT_TRUE(planIsUpdateFirst(baselinePlan(Sys, Gcn, 256, 32)))
        << systemName(Sys);
    EXPECT_FALSE(planIsUpdateFirst(baselinePlan(Sys, Gcn, 32, 256)))
        << systemName(Sys);
  }
}

TEST(Baselines, DglNeverReordersGinSgcTagcn) {
  for (ModelKind Kind : {ModelKind::GIN, ModelKind::SGC, ModelKind::TAGCN}) {
    GnnModel M = makeModel(Kind);
    // Even when K_in >> K_out would favor update-first, DGL stays
    // aggregate-first (paper §VI-C1).
    CompositionPlan Plan = baselinePlan(BaselineSystem::DGL, M, 512, 16);
    EXPECT_FALSE(planIsUpdateFirst(Plan)) << M.Name;
  }
}

TEST(Baselines, WiseGraphReordersSgc) {
  GnnModel Sgc = makeModel(ModelKind::SGC);
  EXPECT_TRUE(
      planIsUpdateFirst(baselinePlan(BaselineSystem::WiseGraph, Sgc, 512, 16)));
}

TEST(Baselines, GatPolicies) {
  GnnModel Gat = makeModel(ModelKind::GAT);
  // WiseGraph: recompute for increasing sizes, reuse otherwise.
  EXPECT_TRUE(planRecomputesTheta(
      baselinePlan(BaselineSystem::WiseGraph, Gat, 32, 256)));
  EXPECT_FALSE(planRecomputesTheta(
      baselinePlan(BaselineSystem::WiseGraph, Gat, 256, 32)));
  // DGL: always reuse.
  EXPECT_FALSE(
      planRecomputesTheta(baselinePlan(BaselineSystem::DGL, Gat, 32, 256)));
  EXPECT_FALSE(
      planRecomputesTheta(baselinePlan(BaselineSystem::DGL, Gat, 256, 32)));
}

TEST(Baselines, PlansAreDeterministic) {
  GnnModel M = makeModel(ModelKind::TAGCN);
  CompositionPlan A = baselinePlan(BaselineSystem::DGL, M, 64, 128);
  CompositionPlan B = baselinePlan(BaselineSystem::DGL, M, 64, 128);
  EXPECT_EQ(A.canonicalKey(), B.canonicalKey());
}

TEST(Baselines, BaselineOutputsMatchGraniiPlans) {
  Graph G = makeErdosRenyi(150, 900, 21);
  Executor Exec(HardwareModel::byName("cpu"));
  for (ModelKind Kind : allModels()) {
    GnnModel M = makeModel(Kind);
    LayerParams Params = makeLayerParams(M, G, 10, 14, 6);
    auto Plans = enumerateCompositions(M.Root);
    DenseMatrix Ref = Exec.run(Plans[0], Params.inputs(), Params.Stats).Output;
    for (BaselineSystem Sys : allSystems()) {
      CompositionPlan Plan = baselinePlan(Sys, M, 10, 14);
      DenseMatrix Out = Exec.run(Plan, Params.inputs(), Params.Stats).Output;
      EXPECT_TRUE(Out.approxEquals(Ref, 2e-3f, 2e-3f))
          << systemName(Sys) << "/" << M.Name;
    }
  }
}

TEST(Baselines, ClassifiersOnKnownPlans) {
  GnnModel Gcn = makeModel(ModelKind::GCN);
  auto Plans = enumerateCompositions(Gcn.Root);
  size_t Precompute = 0, UpdateFirst = 0;
  for (const CompositionPlan &P : Plans) {
    Precompute += planUsesPrecompute(P);
    UpdateFirst += planIsUpdateFirst(P);
  }
  EXPECT_GT(Precompute, 0u);
  EXPECT_LT(Precompute, Plans.size());
  EXPECT_GT(UpdateFirst, 0u);
  EXPECT_LT(UpdateFirst, Plans.size());
}
