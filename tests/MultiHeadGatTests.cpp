//===- MultiHeadGatTests.cpp - Tests for the two-head GAT extension ---------===//

#include "assoc/Enumerate.h"
#include "assoc/Prune.h"
#include "granii/Granii.h"
#include "graph/Generators.h"
#include "models/Baselines.h"

#include <gtest/gtest.h>

#include <set>

using namespace granii;

namespace {

size_t countSteps(const CompositionPlan &Plan, StepOp Op) {
  size_t Count = 0;
  for (const PlanStep &Step : Plan.Steps)
    Count += Step.Op == Op;
  return Count;
}

} // namespace

TEST(MultiHeadGat, ModelMetadata) {
  GnnModel M = makeModel(ModelKind::GATMultiHead);
  EXPECT_EQ(M.Name, "GAT2H");
  EXPECT_EQ(M.WeightCount, 2);
  EXPECT_TRUE(M.UsesAttention);
}

TEST(MultiHeadGat, HeadsEnumerateIndependently) {
  // One reuse/recompute decision per head: 2 x 2 = 4 compositions.
  GnnModel M = makeModel(ModelKind::GATMultiHead);
  auto Plans = enumerateCompositions(M.Root);
  EXPECT_EQ(Plans.size(), 4u);
  // Per-head GEMM counts distinguish the four: reuse heads share their
  // Theta GEMM; recompute heads add one.
  std::set<size_t> GemmCounts;
  for (const CompositionPlan &P : Plans)
    GemmCounts.insert(countSteps(P, StepOp::Gemm));
  // {2 (both reuse), 3 (one recompute), 4 (both recompute)}.
  EXPECT_EQ(GemmCounts, (std::set<size_t>{2, 3, 4}));
}

TEST(MultiHeadGat, EachHeadHasItsOwnAttentionPipeline) {
  GnnModel M = makeModel(ModelKind::GATMultiHead);
  auto Plans = enumerateCompositions(M.Root);
  for (const CompositionPlan &P : Plans) {
    EXPECT_EQ(countSteps(P, StepOp::EdgeSoftmax), 2u);
    EXPECT_EQ(countSteps(P, StepOp::EdgeLogits), 2u);
    EXPECT_EQ(countSteps(P, StepOp::AttnGemv), 4u); // src+dst per head
    EXPECT_EQ(countSteps(P, StepOp::AddDense), 1u); // additive heads
  }
}

TEST(MultiHeadGat, ParamsBindPerHeadVectors) {
  GnnModel M = makeModel(ModelKind::GATMultiHead);
  Graph G = makeErdosRenyi(60, 300, 3);
  LayerParams P = makeLayerParams(M, G, 8, 12, 1);
  ASSERT_EQ(P.AttnVecs.size(), 4u);
  for (const char *Name : {"as0", "ad0", "as1", "ad1"}) {
    ASSERT_TRUE(P.AttnVecs.count(Name)) << Name;
    EXPECT_EQ(P.AttnVecs.at(Name).size(), 12u);
  }
  EXPECT_EQ(P.Weights.size(), 2u);
}

TEST(MultiHeadGat, AllPlansEquivalent) {
  GnnModel M = makeModel(ModelKind::GATMultiHead);
  Graph G = makeRmat(100, 800, 0.5, 0.2, 0.2, 7);
  LayerParams Params = makeLayerParams(M, G, 6, 10, 2);
  Executor Exec(HardwareModel::byName("cpu"));
  auto Plans = enumerateCompositions(M.Root);
  DenseMatrix Ref = Exec.run(Plans[0], Params.inputs(), Params.Stats).Output;
  for (size_t I = 1; I < Plans.size(); ++I)
    EXPECT_TRUE(Exec.run(Plans[I], Params.inputs(), Params.Stats)
                    .Output.approxEquals(Ref, 2e-3f, 2e-3f))
        << "plan " << I;
}

TEST(MultiHeadGat, GradientsReachAllHeads) {
  GnnModel M = makeModel(ModelKind::GATMultiHead);
  Graph G = makeErdosRenyi(40, 200, 5);
  LayerParams Params = makeLayerParams(M, G, 5, 6, 3);
  Executor Exec(HardwareModel::byName("cpu"));
  auto Plans = enumerateCompositions(M.Root);
  ExecResult R = Exec.runTraining(Plans[0], Params.inputs(), Params.Stats);
  ASSERT_TRUE(R.WeightGrads.count("W0"));
  ASSERT_TRUE(R.WeightGrads.count("W1"));
  EXPECT_EQ(R.AttnGrads.size(), 4u);
  for (const auto &[Name, Grad] : R.AttnGrads) {
    double Norm = 0.0;
    for (float V : Grad)
      Norm += static_cast<double>(V) * V;
    EXPECT_GT(Norm, 0.0) << Name;
  }
}

TEST(MultiHeadGat, OptimizerSelectsPerInput) {
  GnnModel M = makeModel(ModelKind::GATMultiHead);
  OptimizerOptions Opts;
  Opts.Hw = HardwareModel::byName("h100");
  AnalyticCostModel Cost(Opts.Hw);
  Optimizer Opt(M, Opts, &Cost);
  EXPECT_GE(Opt.promoted().size(), 2u);

  // Dense graph at small increasing sizes favors recomputing both heads;
  // sparse graph at large sizes favors reusing both (same crossover as the
  // single-head case, applied per head).
  Graph Dense = makeMycielskian(10);
  Graph Sparse = makeRoadLattice(30, 30, 0.0, 1);
  Selection DenseSel = Opt.select(Dense, 32, 128);
  Selection SparseSel = Opt.select(Sparse, 256, 1024);
  size_t DenseGemms =
      countSteps(Opt.promoted()[DenseSel.PlanIndex], StepOp::Gemm);
  size_t SparseGemms =
      countSteps(Opt.promoted()[SparseSel.PlanIndex], StepOp::Gemm);
  EXPECT_GT(DenseGemms, SparseGemms);
}

TEST(MultiHeadGat, MissingAttentionVectorAborts) {
  GnnModel M = makeModel(ModelKind::GATMultiHead);
  Graph G = makeErdosRenyi(30, 120, 9);
  LayerParams Params = makeLayerParams(M, G, 4, 4, 4);
  Params.AttnVecs.erase("as1");
  Executor Exec(HardwareModel::byName("cpu"));
  auto Plans = enumerateCompositions(M.Root);
  EXPECT_DEATH(
      { (void)Exec.run(Plans[0], Params.inputs(), Params.Stats); },
      "no attention vector bound");
}
