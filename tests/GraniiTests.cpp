//===- GraniiTests.cpp - Tests for the GRANII optimizer API -----------------===//

#include "granii/Granii.h"
#include "graph/Generators.h"
#include "graph/Sampling.h"
#include "models/Baselines.h"

#include <gtest/gtest.h>

using namespace granii;

namespace {

/// Shared analytic cost models (selection logic tests don't need training).
const CostModel &analyticFor(const std::string &Hw) {
  static AnalyticCostModel Cpu{HardwareModel::byName("cpu")};
  static AnalyticCostModel A100{HardwareModel::byName("a100")};
  static AnalyticCostModel H100{HardwareModel::byName("h100")};
  if (Hw == "cpu")
    return Cpu;
  return Hw == "a100" ? A100 : H100;
}

Optimizer makeOptimizer(ModelKind Kind, const std::string &Hw = "h100") {
  OptimizerOptions Opts;
  Opts.Hw = HardwareModel::byName(Hw);
  return Optimizer(makeModel(Kind), Opts, &analyticFor(Hw));
}

} // namespace

TEST(Optimizer, OfflineStageRunsOncePerModel) {
  Optimizer Opt = makeOptimizer(ModelKind::GCN);
  EXPECT_EQ(Opt.pruneStats().Enumerated, 16u);
  EXPECT_EQ(Opt.promoted().size(), 4u);
}

TEST(Optimizer, LayerParamsShapes) {
  GnnModel M = makeModel(ModelKind::TAGCN);
  Graph G = makeErdosRenyi(100, 500, 3);
  LayerParams P = makeLayerParams(M, G, 16, 24, 1);
  EXPECT_EQ(P.Features.rows(), 100);
  EXPECT_EQ(P.Features.cols(), 16);
  EXPECT_EQ(P.Weights.size(), 3u);
  EXPECT_EQ(P.Weights.at("W1").cols(), 24);
  EXPECT_TRUE(P.AttnVecs.empty());
  EXPECT_GT(P.AdjSelf.nnz(), G.numEdges()); // Self loops added.
}

TEST(Optimizer, GatParamsIncludeAttention) {
  GnnModel M = makeModel(ModelKind::GAT);
  Graph G = makeErdosRenyi(50, 200, 3);
  LayerParams P = makeLayerParams(M, G, 8, 12, 1);
  ASSERT_EQ(P.AttnVecs.size(), 2u);
  EXPECT_EQ(P.AttnVecs.at("asrc").size(), 12u);
  EXPECT_EQ(P.AttnVecs.at("adst").size(), 12u);
}

TEST(Optimizer, SelectionPrefersSparseAwareChoiceOnSparseGraphs) {
  // On a very sparse graph with K_in < K_out, GCN's precompute composition
  // avoids the per-iteration broadcasts; GRANII should not pick a plan that
  // is analytically much worse than the best.
  Optimizer Opt = makeOptimizer(ModelKind::GCN);
  Graph Sparse = makeRoadLattice(40, 40, 0.0, 1);
  Selection Sel = Opt.select(Sparse, 32, 128);
  // Whatever is chosen must be within 1% of the analytic minimum.
  Graph WithSelf = Sparse.withSelfLoops();
  DimBinding B{WithSelf.numNodes(), 32, 128, WithSelf.numEdges()};
  double Best = 1e300;
  for (const CompositionPlan &P : Opt.promoted())
    Best = std::min(Best, analyticFor("h100").planSeconds(P, B,
                                                          WithSelf.stats(),
                                                          100));
  EXPECT_LE(Sel.PredictedSeconds, Best * 1.01);
}

TEST(Optimizer, ScenarioFilterRespectsAnnotations) {
  Optimizer Opt = makeOptimizer(ModelKind::GCN);
  Graph G = makeErdosRenyi(200, 1000, 2);
  Selection SelGe = Opt.select(G, 128, 32);
  Selection SelLt = Opt.select(G, 32, 128);
  EXPECT_TRUE(Opt.promoted()[SelGe.PlanIndex].ViableGe);
  EXPECT_TRUE(Opt.promoted()[SelLt.PlanIndex].ViableLt);
}

TEST(Optimizer, SelectionChangesWithGraphDensity) {
  // The headline input-sensitivity: on some embedding setting, dense and
  // sparse graphs get different GCN compositions on at least one platform.
  bool AnyDifference = false;
  for (const char *Hw : {"cpu", "a100", "h100"}) {
    Optimizer Opt = makeOptimizer(ModelKind::GCN, Hw);
    Graph Dense = makeMycielskian(10);
    Graph Sparse = makeRoadLattice(30, 30, 0.0, 1);
    for (auto [KIn, KOut] : {std::pair<int,int>{32, 32}, {32, 128}, {128, 32}}) {
      Selection A = Opt.select(Dense, KIn, KOut);
      Selection B = Opt.select(Sparse, KIn, KOut);
      if (A.PlanIndex != B.PlanIndex)
        AnyDifference = true;
    }
  }
  EXPECT_TRUE(AnyDifference);
}

TEST(Optimizer, ExecuteRunsChosenPlan) {
  Optimizer Opt = makeOptimizer(ModelKind::GIN, "cpu");
  Graph G = makeErdosRenyi(120, 600, 4);
  LayerParams Params = makeLayerParams(Opt.model(), G, 16, 8, 2);
  Selection Sel = Opt.select(G, 16, 8);
  ExecResult R = Opt.execute(Sel, Params, /*Training=*/false);
  EXPECT_EQ(R.Output.rows(), 120);
  EXPECT_EQ(R.Output.cols(), 8);
  EXPECT_EQ(R.BackwardSeconds, 0.0);
  ExecResult T = Opt.execute(Sel, Params, /*Training=*/true);
  EXPECT_GT(T.BackwardSeconds, 0.0);
}

TEST(Optimizer, OverheadFieldsPopulated) {
  Optimizer Opt = makeOptimizer(ModelKind::GCN, "h100");
  Graph G = makeErdosRenyi(500, 4000, 5);
  Selection Sel = Opt.select(G, 64, 64);
  EXPECT_GT(Sel.FeaturizeSeconds, 0.0);
  EXPECT_LT(Sel.FeaturizeSeconds, 0.1);
  EXPECT_GE(Sel.SelectSeconds, 0.0);
}

TEST(Optimizer, GatSelectionMatchesCostCrossover) {
  // For GAT with increasing sizes, recompute wins once E(KOut - KIn)
  // exceeds N*KIn*KOut; analytic selection must track that crossover.
  Optimizer Opt = makeOptimizer(ModelKind::GAT, "h100");
  Graph Dense = makeMycielskian(10);  // High average degree.
  Graph Sparse = makeRoadLattice(30, 30, 0.0, 2);
  // Large increasing sizes: the extra GEMM is cheap relative to the
  // aggregation-width savings only on high-degree graphs.
  Selection DenseSel = Opt.select(Dense, 256, 1024);
  Selection SparseSel = Opt.select(Sparse, 256, 1024);
  bool DenseRecompute = planRecomputesTheta(Opt.promoted()[DenseSel.PlanIndex]);
  bool SparseRecompute =
      planRecomputesTheta(Opt.promoted()[SparseSel.PlanIndex]);
  EXPECT_TRUE(DenseRecompute);
  EXPECT_FALSE(SparseRecompute);
}

TEST(Optimizer, DecisionStableAcrossNeighborhoodSamples) {
  // Paper §VI-E: one GRANII call serves all samples of a sampling size.
  Optimizer Opt = makeOptimizer(ModelKind::GCN, "h100");
  Graph G = makeRmat(2000, 40000, 0.55, 0.2, 0.15, 31);
  std::vector<size_t> Choices;
  for (uint64_t Seed = 0; Seed < 6; ++Seed) {
    SampledGraph S = sampleNeighborhood(G, 400, 10, 2, Seed);
    Choices.push_back(Opt.select(S.Sampled, 32, 256).PlanIndex);
  }
  for (size_t C : Choices)
    EXPECT_EQ(C, Choices.front());
}

TEST(Optimizer, IterationsInfluenceSetupAmortization) {
  // With one iteration, precompute's setup cost cannot amortize; with many
  // it can. The chosen plans' predicted costs must reflect Iterations.
  GnnModel M = makeModel(ModelKind::GCN);
  OptimizerOptions Few;
  Few.Hw = HardwareModel::byName("h100");
  Few.Iterations = 1;
  OptimizerOptions Many = Few;
  Many.Iterations = 1000;
  Optimizer OptFew(M, Few, &analyticFor("h100"));
  Optimizer OptMany(M, Many, &analyticFor("h100"));
  Graph G = makeErdosRenyi(400, 3200, 7);
  double CostFew = OptFew.select(G, 64, 64).PredictedSeconds;
  double CostMany = OptMany.select(G, 64, 64).PredictedSeconds;
  EXPECT_GT(CostMany, CostFew);
}

TEST(Optimizer, AblationEnumOptionsFlowThrough) {
  GnnModel M = makeModel(ModelKind::GCN);
  OptimizerOptions Opts;
  Opts.Hw = HardwareModel::byName("cpu");
  Opts.Enum.EnableTernaryRule = false;
  Optimizer Opt(M, Opts, &analyticFor("cpu"));
  for (const CompositionPlan &P : Opt.promoted())
    for (const PlanStep &S : P.Steps)
      EXPECT_NE(S.Op, StepOp::SddmmScaleBoth);
}
