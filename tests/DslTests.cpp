//===- DslTests.cpp - Tests for the message-passing DSL front end -----------===//

#include "ir/Dsl.h"
#include "ir/Rewrite.h"
#include "models/Models.h"

#include <gtest/gtest.h>

using namespace granii;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, TokenKindsAndText) {
  std::string Error;
  auto Tokens = lexModelDsl("model X { h = f(a, 1.5); }", &Error);
  EXPECT_TRUE(Error.empty());
  ASSERT_GE(Tokens.size(), 12u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[0].Text, "model");
  EXPECT_EQ(Tokens[2].Kind, TokenKind::LBrace);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::Equals);
  EXPECT_EQ(Tokens.back().Kind, TokenKind::EndOfFile);
}

TEST(Lexer, NumbersIncludingExponents) {
  std::string Error;
  auto Tokens = lexModelDsl("1.25 3 2e-3", &Error);
  EXPECT_TRUE(Error.empty());
  EXPECT_DOUBLE_EQ(Tokens[0].NumberValue, 1.25);
  EXPECT_DOUBLE_EQ(Tokens[1].NumberValue, 3.0);
  EXPECT_DOUBLE_EQ(Tokens[2].NumberValue, 2e-3);
}

TEST(Lexer, CommentsSkippedAndLinesTracked) {
  std::string Error;
  auto Tokens = lexModelDsl("a # comment\nb", &Error);
  EXPECT_TRUE(Error.empty());
  ASSERT_GE(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
  EXPECT_EQ(Tokens[1].Line, 2);
}

TEST(Lexer, RejectsUnknownCharacter) {
  std::string Error;
  auto Tokens = lexModelDsl("a @ b", &Error);
  EXPECT_NE(Error.find("unexpected character"), std::string::npos);
  EXPECT_EQ(Tokens.back().Kind, TokenKind::EndOfFile);
}

//===----------------------------------------------------------------------===//
// Parser + lowering
//===----------------------------------------------------------------------===//

TEST(Parser, GcnLowersToExpectedIR) {
  std::string Error;
  auto Model = parseModelDsl(modelDslSource(ModelKind::GCN), &Error);
  ASSERT_TRUE(Model.has_value()) << Error;
  EXPECT_EQ(Model->Name, "GCN");
  std::string Key = Model->Root->canonicalKey();
  EXPECT_EQ(Key,
            "relu(rowbcast(D,matmul(A,rowbcast(D,H),W)))");
}

TEST(Parser, AllFiveModelSourcesParse) {
  for (ModelKind Kind : allModels()) {
    std::string Error;
    auto Model = parseModelDsl(modelDslSource(Kind), &Error);
    EXPECT_TRUE(Model.has_value()) << modelName(Kind) << ": " << Error;
    if (Model)
      verifyIR(Model->Root);
  }
}

TEST(Parser, GatHasAttentionWithSharedTheta) {
  std::string Error;
  auto Model = parseModelDsl(modelDslSource(ModelKind::GAT), &Error);
  ASSERT_TRUE(Model.has_value()) << Error;
  std::string Key = Model->Root->canonicalKey();
  // Theta = matmul(H,W) appears both inside atten(...) and as the
  // aggregation operand (flattened into the chain).
  EXPECT_NE(Key.find("atten(A,matmul(H,W)"), std::string::npos);
}

TEST(Parser, SgcHopCountControlsChainLength) {
  std::string Error;
  auto One = parseModelDsl(modelDslSource(ModelKind::SGC, 1), &Error);
  auto Three = parseModelDsl(modelDslSource(ModelKind::SGC, 3), &Error);
  ASSERT_TRUE(One && Three);
  // Each hop adds "rowbcast" twice and "matmul(A" once.
  std::string K1 = One->Root->canonicalKey();
  std::string K3 = Three->Root->canonicalKey();
  EXPECT_LT(K1.size(), K3.size());
}

TEST(Parser, ReportsUndefinedName) {
  std::string Error;
  auto Model = parseModelDsl("model M { output relu(x); }", &Error);
  EXPECT_FALSE(Model.has_value());
  EXPECT_NE(Error.find("undefined name 'x'"), std::string::npos);
}

TEST(Parser, ReportsMissingOutput) {
  std::string Error;
  auto Model = parseModelDsl("model M { input features H; }", &Error);
  EXPECT_FALSE(Model.has_value());
  EXPECT_NE(Error.find("no 'output'"), std::string::npos);
}

TEST(Parser, ReportsLineNumbers) {
  std::string Error;
  auto Model = parseModelDsl("model M {\n  h = nosuch(1);\n}", &Error);
  EXPECT_FALSE(Model.has_value());
  EXPECT_NE(Error.find("line 2"), std::string::npos);
}

TEST(Parser, ReportsUnknownOperation) {
  std::string Error;
  auto Model = parseModelDsl(
      "model M { input features H; output frobnicate(H); }", &Error);
  EXPECT_FALSE(Model.has_value());
  EXPECT_NE(Error.find("unknown operation 'frobnicate'"), std::string::npos);
}

TEST(Parser, ReportsArityErrors) {
  std::string Error;
  auto Model = parseModelDsl(
      "model M { input features H; output matmul(H); }", &Error);
  EXPECT_FALSE(Model.has_value());
  EXPECT_NE(Error.find("matmul"), std::string::npos);
}

TEST(Parser, ReportsUnterminatedBody) {
  std::string Error;
  auto Model = parseModelDsl("model M { input features H;", &Error);
  EXPECT_FALSE(Model.has_value());
  EXPECT_NE(Error.find("end of input"), std::string::npos);
}

TEST(Parser, ScaleRequiresNumberFirst) {
  std::string Error;
  auto Model = parseModelDsl(
      "model M { input features H; output scale(H, 2); }", &Error);
  EXPECT_FALSE(Model.has_value());
}

TEST(Parser, RebindingNamesIsAllowed) {
  std::string Error;
  auto Model = parseModelDsl("model M {\n"
                             "  input graph A;\n"
                             "  input features H;\n"
                             "  h = aggregate(A, H);\n"
                             "  h = aggregate(A, h);\n"
                             "  output relu(h);\n"
                             "}",
                             &Error);
  ASSERT_TRUE(Model.has_value()) << Error;
  EXPECT_EQ(Model->Root->canonicalKey(), "relu(matmul(A,A,H))");
}

//===----------------------------------------------------------------------===//
// Model registry
//===----------------------------------------------------------------------===//

TEST(Models, NamesAndOrder) {
  EXPECT_EQ(modelName(ModelKind::GCN), "gcn");
  EXPECT_EQ(modelName(ModelKind::GAT), "gat");
  EXPECT_EQ(allModels().size(), 5u);
}

TEST(Models, MakeModelFillsMetadata) {
  GnnModel Tagcn = makeModel(ModelKind::TAGCN, 2);
  EXPECT_EQ(Tagcn.WeightCount, 3);
  EXPECT_EQ(Tagcn.Hops, 2);
  EXPECT_FALSE(Tagcn.UsesAttention);
  GnnModel Gat = makeModel(ModelKind::GAT);
  EXPECT_TRUE(Gat.UsesAttention);
  EXPECT_EQ(Gat.WeightCount, 1);
}

TEST(Models, SgcChainFlattensCompletely) {
  GnnModel Sgc = makeModel(ModelKind::SGC, 2);
  IRNodeRef Rewritten = rewriteBroadcastsToDiag(Sgc.Root);
  // matmul(D,A,D,D,A,D,H,W): 8 operands in a single flat chain.
  const auto *Mul = dynCast<MatMulNode>(Rewritten);
  ASSERT_NE(Mul, nullptr);
  EXPECT_EQ(Mul->operands().size(), 8u);
}
