//===- FormatTests.cpp - Multi-format storage conversion tests --------------===//
//
// Converter round-trip properties (CSR -> {ELL, SELL, HYB, CSC} -> CSR is
// exact), hybrid overflow-threshold edge cases, format-tag parsing, and
// GRANII_CHECK death tests on malformed inputs. The cross-format numeric
// agreement of the kernels themselves lives in DifferentialTests.
//
//===----------------------------------------------------------------------===//

#include "kernels/FormatKernels.h"
#include "support/Rng.h"
#include "tensor/CooMatrix.h"
#include "tensor/CscMatrix.h"
#include "tensor/EllMatrix.h"
#include "tensor/HybMatrix.h"
#include "tensor/SellMatrix.h"
#include "tensor/SparseFormat.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace granii;

namespace {

/// Structural + value equality of two CSR matrices (bitwise on values).
void expectCsrEqual(const CsrMatrix &A, const CsrMatrix &B) {
  ASSERT_EQ(A.rows(), B.rows());
  ASSERT_EQ(A.cols(), B.cols());
  ASSERT_EQ(A.nnz(), B.nnz());
  EXPECT_TRUE(std::equal(A.rowOffsets().begin(), A.rowOffsets().end(),
                         B.rowOffsets().begin()));
  EXPECT_TRUE(std::equal(A.colIndices().begin(), A.colIndices().end(),
                         B.colIndices().begin()));
  ASSERT_EQ(A.values().size(), B.values().size());
  EXPECT_TRUE(
      std::equal(A.values().begin(), A.values().end(), B.values().begin()));
}

/// The fixture family the ISSUE names: empty, diagonal, one dense row, and
/// a skewed (hub-and-spokes plus ring) structure.
struct Fixture {
  std::string Name;
  CsrMatrix A;
};

std::vector<Fixture> makeFixtures() {
  std::vector<Fixture> Out;
  Out.push_back({"empty-0x0", CsrMatrix()});
  {
    CooMatrix Coo(5, 7); // rectangular, no entries at all
    Out.push_back({"empty-5x7", Coo.toCsr()});
  }
  {
    CooMatrix Coo(6, 6);
    for (int64_t I = 0; I < 6; ++I)
      Coo.add(I, I, 0.5f + static_cast<float>(I));
    Out.push_back({"diagonal", Coo.toCsr(/*Unweighted=*/false)});
  }
  {
    CooMatrix Coo(8, 8); // row 3 is fully dense, everything else empty
    for (int64_t J = 0; J < 8; ++J)
      Coo.add(3, J, static_cast<float>(J + 1));
    Out.push_back({"dense-row", Coo.toCsr(/*Unweighted=*/false)});
  }
  {
    CooMatrix Coo(16, 16); // hub row 0 touches everyone, plus a ring
    for (int64_t J = 1; J < 16; ++J)
      Coo.add(0, J, 1.0f / static_cast<float>(J));
    for (int64_t I = 1; I < 16; ++I)
      Coo.add(I, (I + 1) % 16, 2.0f);
    Out.push_back({"skewed-hub", Coo.toCsr(/*Unweighted=*/false)});
  }
  {
    Rng R(321); // > SliceHeight rows so SELL gets several slices
    CooMatrix Coo(100, 100);
    for (int64_t I = 0; I < 700; ++I)
      Coo.add(static_cast<int64_t>(R.nextBelow(100)),
              static_cast<int64_t>(R.nextBelow(100)),
              R.nextFloat(0.1f, 1.0f));
    Out.push_back({"random-100", Coo.toCsr(/*Unweighted=*/false)});
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Format tag parsing
//===----------------------------------------------------------------------===//

TEST(SparseFormatTest, NamesRoundTripThroughParse) {
  for (SparseFormat F :
       {SparseFormat::Csr, SparseFormat::Ell, SparseFormat::Sell,
        SparseFormat::Hyb, SparseFormat::Csc, SparseFormat::Auto}) {
    std::optional<SparseFormat> Back = parseSparseFormat(sparseFormatName(F));
    ASSERT_TRUE(Back.has_value()) << sparseFormatName(F);
    EXPECT_EQ(*Back, F);
  }
  EXPECT_FALSE(parseSparseFormat("coo").has_value());
  EXPECT_FALSE(parseSparseFormat("").has_value());
  EXPECT_FALSE(parseSparseFormat("CSR").has_value()); // names are lowercase
}

TEST(SparseFormatTest, ForwardFormatsAreTheExecutableOnes) {
  auto Fwd = forwardSparseFormats();
  EXPECT_EQ(std::count(Fwd.begin(), Fwd.end(), SparseFormat::Csr), 1);
  EXPECT_EQ(std::count(Fwd.begin(), Fwd.end(), SparseFormat::Ell), 1);
  EXPECT_EQ(std::count(Fwd.begin(), Fwd.end(), SparseFormat::Sell), 1);
  EXPECT_EQ(std::count(Fwd.begin(), Fwd.end(), SparseFormat::Hyb), 1);
  // CSC is backward-only and Auto is a request, not a storage layout.
  EXPECT_EQ(std::count(Fwd.begin(), Fwd.end(), SparseFormat::Csc), 0);
  EXPECT_EQ(std::count(Fwd.begin(), Fwd.end(), SparseFormat::Auto), 0);
}

//===----------------------------------------------------------------------===//
// Converter round trips: CSR -> X -> CSR is exact on every fixture
//===----------------------------------------------------------------------===//

TEST(FormatRoundTrip, EllIsExact) {
  for (const Fixture &F : makeFixtures()) {
    SCOPED_TRACE(F.Name);
    EllMatrix E = EllMatrix::fromCsr(F.A);
    E.verify();
    EXPECT_EQ(E.nnz(), F.A.nnz());
    expectCsrEqual(E.toCsr(F.A.values()), F.A);
  }
}

TEST(FormatRoundTrip, SellIsExact) {
  for (const Fixture &F : makeFixtures()) {
    SCOPED_TRACE(F.Name);
    SellMatrix S = SellMatrix::fromCsr(F.A);
    S.verify();
    EXPECT_EQ(S.nnz(), F.A.nnz());
    EXPECT_GE(S.paddedSize(), S.nnz());
    expectCsrEqual(S.toCsr(F.A.values()), F.A);
  }
}

TEST(FormatRoundTrip, HybIsExact) {
  for (const Fixture &F : makeFixtures()) {
    SCOPED_TRACE(F.Name);
    HybMatrix H = HybMatrix::fromCsr(F.A);
    H.verify();
    EXPECT_EQ(H.nnz(), F.A.nnz());
    expectCsrEqual(H.toCsr(F.A.values()), F.A);
  }
}

TEST(FormatRoundTrip, CscIsExact) {
  for (const Fixture &F : makeFixtures()) {
    SCOPED_TRACE(F.Name);
    CscMatrix C = CscMatrix::fromCsr(F.A);
    C.verify();
    EXPECT_EQ(C.nnz(), F.A.nnz());
    expectCsrEqual(C.toCsr(F.A.values()), F.A);
  }
}

TEST(FormatRoundTrip, UnweightedStaysUnweighted) {
  CooMatrix Coo(10, 10);
  Rng R(11);
  for (int64_t I = 0; I < 40; ++I)
    Coo.add(static_cast<int64_t>(R.nextBelow(10)),
            static_cast<int64_t>(R.nextBelow(10)));
  CsrMatrix A = Coo.toCsr(); // structural: values() is empty
  ASSERT_TRUE(A.values().empty());
  expectCsrEqual(EllMatrix::fromCsr(A).toCsr(), A);
  expectCsrEqual(SellMatrix::fromCsr(A).toCsr(), A);
  expectCsrEqual(HybMatrix::fromCsr(A).toCsr(), A);
  expectCsrEqual(CscMatrix::fromCsr(A).toCsr(), A);
}

//===----------------------------------------------------------------------===//
// Structural properties of the conversions
//===----------------------------------------------------------------------===//

TEST(FormatStructure, EllWidthIsMaxRowLength) {
  CooMatrix Coo(4, 8);
  Coo.add(0, 1);
  Coo.add(1, 0);
  Coo.add(1, 2);
  Coo.add(1, 5); // row 1 is longest: 3 entries
  CsrMatrix A = Coo.toCsr();
  EllMatrix E = EllMatrix::fromCsr(A);
  EXPECT_EQ(E.width(), 3);
  EXPECT_EQ(static_cast<int64_t>(E.colIndices().size()), 4 * 3);
  // Row 3 is empty: all padding.
  for (int64_t K = 0; K < E.width(); ++K)
    EXPECT_EQ(E.rowColsPtr(3)[K], -1);
}

TEST(FormatStructure, SellSlicesPadIndependently) {
  // 64 rows = two slices. Slice 0 holds the single long row; slice 1 is
  // one-entry-per-row, so its width must stay 1 regardless of slice 0.
  CooMatrix Coo(64, 64);
  for (int64_t J = 0; J < 20; ++J)
    Coo.add(0, J);
  for (int64_t I = 32; I < 64; ++I)
    Coo.add(I, I % 64);
  SellMatrix S = SellMatrix::fromCsr(Coo.toCsr());
  ASSERT_EQ(S.numSlices(), 2);
  EXPECT_EQ(S.sliceWidth(0), 20);
  EXPECT_EQ(S.sliceWidth(1), 1);
  EXPECT_LT(S.paddedSize(),
            S.rows() * S.sliceWidth(0)); // cheaper than plain ELL
}

TEST(FormatStructure, CscColumnsMatchTransposedCsr) {
  Rng R(77);
  CooMatrix Coo(30, 30);
  for (int64_t I = 0; I < 150; ++I)
    Coo.add(static_cast<int64_t>(R.nextBelow(30)),
            static_cast<int64_t>(R.nextBelow(30)), R.nextFloat(0.1f, 1.0f));
  CsrMatrix A = Coo.toCsr(/*Unweighted=*/false);
  CscMatrix C = CscMatrix::fromCsr(A);
  CsrMatrix T = A.transposed();
  // Column c of the CSC view is row c of A^T, in the same entry order.
  ASSERT_TRUE(
      std::equal(C.colOffsets().begin(), C.colOffsets().end(),
                 T.rowOffsets().begin()));
  EXPECT_TRUE(std::equal(C.rowIndices().begin(), C.rowIndices().end(),
                         T.colIndices().begin()));
  for (int64_t K = 0; K < C.nnz(); ++K)
    EXPECT_EQ(A.values()[static_cast<size_t>(C.csrIndices()[K])],
              T.values()[static_cast<size_t>(K)]);
}

//===----------------------------------------------------------------------===//
// Hybrid overflow-threshold edge cases
//===----------------------------------------------------------------------===//

namespace {

CsrMatrix skewedFixture() {
  CooMatrix Coo(10, 10); // row 0 has 8 entries, rows 1..9 have one each
  for (int64_t J = 1; J < 9; ++J)
    Coo.add(0, J, static_cast<float>(J));
  for (int64_t I = 1; I < 10; ++I)
    Coo.add(I, I - 1, 1.0f);
  return Coo.toCsr(/*Unweighted=*/false);
}

} // namespace

TEST(HybThreshold, WidthAtMaxRowLengthIsPureEll) {
  CsrMatrix A = skewedFixture();
  HybMatrix H = HybMatrix::fromCsr(A, /*EllWidth=*/8);
  H.verify();
  EXPECT_EQ(H.ellWidth(), 8);
  EXPECT_EQ(H.cooNnz(), 0);
  expectCsrEqual(H.toCsr(A.values()), A);
}

TEST(HybThreshold, WidthZeroIsPureCoo) {
  CsrMatrix A = skewedFixture();
  HybMatrix H = HybMatrix::fromCsr(A, /*EllWidth=*/0);
  H.verify();
  EXPECT_EQ(H.ellWidth(), 0);
  EXPECT_EQ(H.cooNnz(), A.nnz());
  EXPECT_TRUE(H.ellCols().empty());
  expectCsrEqual(H.toCsr(A.values()), A);
}

TEST(HybThreshold, SingleLongRowSpillsOnlyItsTail) {
  CsrMatrix A = skewedFixture();
  HybMatrix H = HybMatrix::fromCsr(A, /*EllWidth=*/1);
  H.verify();
  // Every row keeps its first entry in ELL; only row 0's remaining 7 spill.
  EXPECT_EQ(H.cooNnz(), 7);
  EXPECT_EQ(H.cooRowOffsets()[1] - H.cooRowOffsets()[0], 7);
  for (int64_t R = 1; R < H.rows(); ++R)
    EXPECT_EQ(H.cooRowOffsets()[R + 1], H.cooRowOffsets()[R]);
  expectCsrEqual(H.toCsr(A.values()), A);
}

TEST(HybThreshold, DefaultWidthCoversRegularGraphsEntirely) {
  CooMatrix Coo(12, 12); // constant degree 2: mean == max, nothing spills
  for (int64_t I = 0; I < 12; ++I) {
    Coo.add(I, (I + 1) % 12);
    Coo.add(I, (I + 5) % 12);
  }
  HybMatrix H = HybMatrix::fromCsr(Coo.toCsr());
  EXPECT_EQ(H.cooNnz(), 0);
  EXPECT_EQ(H.ellWidth(), 2);
}

TEST(HybThreshold, EveryWidthRoundTrips) {
  CsrMatrix A = skewedFixture();
  for (int64_t W = 0; W <= 9; ++W) {
    SCOPED_TRACE(W);
    HybMatrix H = HybMatrix::fromCsr(A, W);
    H.verify();
    EXPECT_EQ(H.cooNnz() + (H.nnz() - H.cooNnz()), A.nnz());
    expectCsrEqual(H.toCsr(A.values()), A);
  }
}

//===----------------------------------------------------------------------===//
// Malformed-input death tests (GRANII_CHECK is always on)
//===----------------------------------------------------------------------===//

TEST(FormatDeathTest, ToCsrRejectsWrongValueCount) {
  CsrMatrix A = skewedFixture();
  std::vector<float> Short(static_cast<size_t>(A.nnz() - 1), 1.0f);
  EXPECT_DEATH(EllMatrix::fromCsr(A).toCsr(Short),
               "ell->csr value count mismatch");
  EXPECT_DEATH(SellMatrix::fromCsr(A).toCsr(Short),
               "sell->csr value count mismatch");
  EXPECT_DEATH(HybMatrix::fromCsr(A).toCsr(Short),
               "hyb->csr value count mismatch");
  EXPECT_DEATH(CscMatrix::fromCsr(A).toCsr(Short),
               "csc->csr value count mismatch");
}

TEST(FormatDeathTest, HybRejectsNegativeWidth) {
  CsrMatrix A = skewedFixture();
  EXPECT_DEATH(HybMatrix::fromCsr(A, -1), "hyb ELL width must be non-negative");
}

TEST(FormatDeathTest, KernelsRejectShapeMismatches) {
  CsrMatrix A = skewedFixture(); // 10 x 10
  DenseMatrix B(9, 4);           // wrong inner dimension
  DenseMatrix Dst(10, 4);
  EXPECT_DEATH(kernels::spmmEllInto(EllMatrix::fromCsr(A), A.values(), B,
                                    Semiring::plusTimes(), Dst),
               "spmm_ell dimension mismatch");
  EXPECT_DEATH(kernels::spmmSellInto(SellMatrix::fromCsr(A), A.values(), B,
                                     Semiring::plusTimes(), Dst),
               "spmm_sell dimension mismatch");
  EXPECT_DEATH(kernels::spmmHybInto(HybMatrix::fromCsr(A), A.values(), B,
                                    Semiring::plusTimes(), Dst),
               "spmm_hyb dimension mismatch");
}

TEST(FormatDeathTest, SddmmRejectsWrongOutputLength) {
  CsrMatrix A = skewedFixture();
  DenseMatrix U(10, 3), V(10, 3);
  std::vector<float> Out(static_cast<size_t>(A.nnz() + 1));
  EXPECT_DEATH(kernels::sddmmEllInto(EllMatrix::fromCsr(A), U, V,
                                     Semiring::plusTimes(), Out),
               "sddmm_ell destination length mismatch");
}
