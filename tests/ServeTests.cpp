//===- ServeTests.cpp - Tests for the granii-serve layer --------------------===//
//
// Covers the serving stack bottom-up: the checked wire codec and framing,
// the protocol encode/decode pairs (including truncation and corruption),
// the Engine/Session amortization contract (warm runs are bitwise identical
// to cold ones and perform zero workspace allocations), and a real
// Unix-domain-socket daemon under eight concurrent clients.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Engine.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "serve/Wire.h"

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace granii;
using namespace granii::serve;

namespace {

const char *GcnModel = "model GCN {\n"
                       "  input graph A;\n"
                       "  input features H;\n"
                       "  param weight W;\n"
                       "  d = inv_sqrt_degree(A);\n"
                       "  h = row_scale(d, H);\n"
                       "  h = aggregate(A, h);\n"
                       "  h = matmul(h, W);\n"
                       "  h = row_scale(d, h);\n"
                       "  output relu(h);\n"
                       "}\n";

JobRequest smallRequest(bool WantOutput = true) {
  JobRequest Req;
  Req.ModelText = GcnModel;
  Req.GraphSpec = "synth:mycielskian";
  Req.KIn = 8;
  Req.KOut = 12;
  Req.WantOutput = WantOutput;
  return Req;
}

EngineOptions testEngineOptions() {
  EngineOptions Opts;
  Opts.DiskSpill = false; // keep unit tests hermetic
  return Opts;
}

std::string uniqueSocketPath(const std::string &Tag) {
  // Keep it short: sun_path is ~108 bytes.
  return "/tmp/granii-" + Tag + "-" + std::to_string(::getpid()) + ".sock";
}

} // namespace

//===----------------------------------------------------------------------===//
// Wire codec
//===----------------------------------------------------------------------===//

TEST(Wire, PrimitivesRoundTrip) {
  WireWriter W;
  W.putU8(0xab);
  W.putU16(0xbeef);
  W.putU32(0xdeadbeefu);
  W.putU64(0x0123456789abcdefull);
  W.putI64(-42);
  W.putF64(3.141592653589793);
  W.putString("hello wire");
  std::vector<float> Floats = {1.0f, -2.5f, 0.0f};
  W.putFloats(Floats);

  WireReader R(W.bytes());
  EXPECT_EQ(R.getU8(), 0xab);
  EXPECT_EQ(R.getU16(), 0xbeef);
  EXPECT_EQ(R.getU32(), 0xdeadbeefu);
  EXPECT_EQ(R.getU64(), 0x0123456789abcdefull);
  EXPECT_EQ(R.getI64(), -42);
  EXPECT_DOUBLE_EQ(R.getF64(), 3.141592653589793);
  EXPECT_EQ(R.getString(), "hello wire");
  EXPECT_EQ(R.getFloats(), Floats);
  EXPECT_TRUE(R.atEnd());
}

TEST(Wire, TruncatedBufferLatchesPositionedError) {
  WireWriter W;
  W.putU64(7);
  std::vector<uint8_t> Bytes = W.take();
  Bytes.resize(5); // cut the u64 short
  WireReader R(Bytes);
  EXPECT_EQ(R.getU64(), 0u);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.error().find("truncated payload at byte"), std::string::npos);
  // Latched: later reads stay failed and return zero values.
  EXPECT_EQ(R.getU32(), 0u);
  EXPECT_EQ(R.getString(), "");
  EXPECT_FALSE(R.atEnd());
}

TEST(Wire, StringLengthBeyondPayloadIsRejected) {
  WireWriter W;
  W.putU32(1000); // claims 1000 bytes follow
  W.putU8('x');
  WireReader R(W.bytes());
  EXPECT_EQ(R.getString(), "");
  EXPECT_FALSE(R.ok());
}

TEST(Wire, FloatCountBeyondPayloadIsRejected) {
  WireWriter W;
  W.putU64(1ull << 40); // absurd element count, tiny payload
  WireReader R(W.bytes());
  EXPECT_TRUE(R.getFloats().empty());
  EXPECT_FALSE(R.ok());
}

TEST(Wire, FramesRoundTripOverAPipe) {
  int Fds[2];
  ASSERT_EQ(::pipe(Fds), 0);
  std::vector<uint8_t> Payload = {1, 2, 3, 4, 5};
  std::string Err;
  ASSERT_TRUE(writeFrame(Fds[1], 2, Payload, &Err)) << Err;
  Frame F;
  ASSERT_EQ(readFrame(Fds[0], F, &Err), ReadStatus::Ok) << Err;
  EXPECT_EQ(F.Verb, 2);
  EXPECT_EQ(F.Payload, Payload);

  // Orderly close between frames is Eof, not an error.
  ::close(Fds[1]);
  EXPECT_EQ(readFrame(Fds[0], F, &Err), ReadStatus::Eof);
  ::close(Fds[0]);
}

TEST(Wire, BadMagicAndTruncatedFrameAreErrors) {
  {
    int Fds[2];
    ASSERT_EQ(::pipe(Fds), 0);
    const char Junk[] = "NOTAFRAMEATALL";
    ASSERT_EQ(::write(Fds[1], Junk, sizeof(Junk)),
              static_cast<ssize_t>(sizeof(Junk)));
    ::close(Fds[1]);
    Frame F;
    std::string Err;
    EXPECT_EQ(readFrame(Fds[0], F, &Err), ReadStatus::Error);
    EXPECT_NE(Err.find("magic"), std::string::npos);
    ::close(Fds[0]);
  }
  {
    // Valid header promising more payload than ever arrives.
    int Fds[2];
    ASSERT_EQ(::pipe(Fds), 0);
    WireWriter W;
    W.putU32(FrameMagic);
    W.putU16(ProtocolVersion);
    W.putU16(1);
    W.putU32(100); // payload length, but we send only 3 bytes
    W.putU8(0);
    W.putU8(0);
    W.putU8(0);
    const std::vector<uint8_t> &Bytes = W.bytes();
    ASSERT_EQ(::write(Fds[1], Bytes.data(), Bytes.size()),
              static_cast<ssize_t>(Bytes.size()));
    ::close(Fds[1]);
    Frame F;
    std::string Err;
    EXPECT_EQ(readFrame(Fds[0], F, &Err), ReadStatus::Error);
    ::close(Fds[0]);
  }
}

//===----------------------------------------------------------------------===//
// Protocol messages
//===----------------------------------------------------------------------===//

TEST(Protocol, JobRequestRoundTrip) {
  JobRequest Req;
  Req.ModelText = GcnModel;
  Req.GraphSpec = "synth:reddit";
  Req.KIn = 48;
  Req.KOut = 96;
  Req.Training = true;
  Req.Reorder = "degree";
  Req.Seed = 7;
  Req.WantOutput = true;
  Req.Format = "hyb";

  JobRequest Out;
  std::string Err;
  ASSERT_TRUE(decodeJobRequest(encodeJobRequest(Req), Out, &Err)) << Err;
  EXPECT_EQ(Out.ModelText, Req.ModelText);
  EXPECT_EQ(Out.GraphSpec, Req.GraphSpec);
  EXPECT_EQ(Out.KIn, Req.KIn);
  EXPECT_EQ(Out.KOut, Req.KOut);
  EXPECT_EQ(Out.Training, Req.Training);
  EXPECT_EQ(Out.Reorder, Req.Reorder);
  EXPECT_EQ(Out.Seed, Req.Seed);
  EXPECT_EQ(Out.WantOutput, Req.WantOutput);
  EXPECT_EQ(Out.Format, Req.Format);
}

TEST(Protocol, JobRequestRejectsTruncationAndTrailingGarbage) {
  std::vector<uint8_t> Bytes = encodeJobRequest(smallRequest());
  for (size_t Cut : {size_t(0), size_t(1), Bytes.size() / 2,
                     Bytes.size() - 1}) {
    JobRequest Out;
    std::string Err;
    std::vector<uint8_t> Short(Bytes.begin(), Bytes.begin() + Cut);
    EXPECT_FALSE(decodeJobRequest(Short, Out, &Err)) << "cut=" << Cut;
    EXPECT_FALSE(Err.empty());
  }
  std::vector<uint8_t> Long = Bytes;
  Long.push_back(0);
  JobRequest Out;
  std::string Err;
  EXPECT_FALSE(decodeJobRequest(Long, Out, &Err));
  EXPECT_NE(Err.find("trailing"), std::string::npos);
}

TEST(Protocol, RunResponseRoundTripIncludingOutput) {
  RunResponse Resp;
  Resp.Rows = 3;
  Resp.Cols = 2;
  Resp.Output = {1.5f, -2.0f, 0.0f, 4.25f, 1e-7f, -9.5f};
  Resp.SetupSeconds = 0.125;
  Resp.ForwardSeconds = 0.5;
  Resp.BackwardSeconds = 0.25;
  Resp.PlanIndex = 2;
  Resp.UsedCostModels = true;
  Resp.PlanCacheHit = true;
  Resp.SessionCacheHit = true;
  Resp.SteadyAllocations = 0;
  Resp.RunIndex = 5;

  RunResponse Out;
  std::string Err;
  ASSERT_TRUE(decodeRunResponse(encodeRunResponse(Resp), Out, &Err)) << Err;
  EXPECT_TRUE(Out.Status.Ok);
  EXPECT_EQ(Out.Rows, 3);
  EXPECT_EQ(Out.Cols, 2);
  EXPECT_EQ(Out.Output, Resp.Output); // bit-exact float transport
  EXPECT_DOUBLE_EQ(Out.ForwardSeconds, 0.5);
  EXPECT_EQ(Out.PlanIndex, 2u);
  EXPECT_TRUE(Out.SessionCacheHit);
  EXPECT_EQ(Out.RunIndex, 5u);
}

TEST(Protocol, ErrorResponsesCarryTheMessageForEveryVerb) {
  std::string Err;
  {
    CompileResponse Out;
    ASSERT_TRUE(decodeCompileResponse(
        encodeErrorResponse(Verb::Compile, "boom"), Out, &Err))
        << Err;
    EXPECT_FALSE(Out.Status.Ok);
    EXPECT_EQ(Out.Status.Error, "boom");
  }
  {
    RunResponse Out;
    ASSERT_TRUE(
        decodeRunResponse(encodeErrorResponse(Verb::Run, "boom"), Out, &Err));
    EXPECT_FALSE(Out.Status.Ok);
  }
  {
    StatsResponse Out;
    ASSERT_TRUE(decodeStatsResponse(encodeErrorResponse(Verb::Stats, "boom"),
                                    Out, &Err));
    EXPECT_FALSE(Out.Status.Ok);
  }
  {
    ShutdownResponse Out;
    ASSERT_TRUE(decodeShutdownResponse(
        encodeErrorResponse(Verb::Shutdown, "boom"), Out, &Err));
    EXPECT_FALSE(Out.Status.Ok);
  }
}

TEST(Protocol, StatsResponseRoundTrip) {
  StatsResponse Resp;
  Resp.RequestsServed = 10;
  Resp.RunRequests = 6;
  Resp.CompileRequests = 2;
  Resp.ErrorResponses = 1;
  Resp.SessionsLive = 3;
  Resp.SessionHits = 4;
  Resp.PlanCacheHits = 5;
  Resp.PlanCacheMisses = 2;
  Resp.UptimeSeconds = 12.5;
  Resp.Threads = 4;
  Resp.Isa = "avx2";
  StatsResponse Out;
  std::string Err;
  ASSERT_TRUE(decodeStatsResponse(encodeStatsResponse(Resp), Out, &Err))
      << Err;
  EXPECT_EQ(Out.RequestsServed, 10u);
  EXPECT_EQ(Out.RunRequests, 6u);
  EXPECT_EQ(Out.SessionsLive, 3u);
  EXPECT_EQ(Out.PlanCacheHits, 5u);
  EXPECT_DOUBLE_EQ(Out.UptimeSeconds, 12.5);
  EXPECT_EQ(Out.Isa, "avx2");
}

//===----------------------------------------------------------------------===//
// Engine / Session
//===----------------------------------------------------------------------===//

TEST(Engine, RequestErrorsComeBackAsStatusNotCrashes) {
  Engine Eng(testEngineOptions());
  {
    JobRequest Req = smallRequest();
    Req.ModelText = "model Broken { this is not DSL";
    RunResponse Resp = Eng.run(Req);
    EXPECT_FALSE(Resp.Status.Ok);
    EXPECT_FALSE(Resp.Status.Error.empty());
  }
  {
    JobRequest Req = smallRequest();
    Req.GraphSpec = "synth:nosuchgraph";
    RunResponse Resp = Eng.run(Req);
    EXPECT_FALSE(Resp.Status.Ok);
    EXPECT_NE(Resp.Status.Error.find("nosuchgraph"), std::string::npos);
  }
  {
    JobRequest Req = smallRequest();
    Req.Reorder = "nosuchpolicy";
    RunResponse Resp = Eng.run(Req);
    EXPECT_FALSE(Resp.Status.Ok);
  }
  {
    JobRequest Req = smallRequest();
    Req.KIn = 0;
    RunResponse Resp = Eng.run(Req);
    EXPECT_FALSE(Resp.Status.Ok);
  }
}

TEST(Engine, WarmRunsAreBitwiseIdenticalAndAllocationFree) {
  Engine Eng(testEngineOptions());
  JobRequest Req = smallRequest();

  RunResponse Cold = Eng.run(Req);
  ASSERT_TRUE(Cold.Status.Ok) << Cold.Status.Error;
  EXPECT_FALSE(Cold.SessionCacheHit);
  EXPECT_EQ(Cold.RunIndex, 1u);
  ASSERT_GT(Cold.Rows, 0);
  ASSERT_EQ(Cold.Output.size(),
            static_cast<size_t>(Cold.Rows) * static_cast<size_t>(Cold.Cols));

  for (int I = 0; I < 3; ++I) {
    RunResponse Warm = Eng.run(Req);
    ASSERT_TRUE(Warm.Status.Ok) << Warm.Status.Error;
    EXPECT_TRUE(Warm.SessionCacheHit);
    EXPECT_EQ(Warm.RunIndex, static_cast<uint64_t>(I + 2));
    // The amortization guarantee: no workspace growth on a warm pass.
    EXPECT_EQ(Warm.SteadyAllocations, 0u);
    // Bitwise-identical output (same session, deterministic kernels).
    ASSERT_EQ(Warm.Output.size(), Cold.Output.size());
    EXPECT_EQ(std::memcmp(Warm.Output.data(), Cold.Output.data(),
                          Cold.Output.size() * sizeof(float)),
              0);
  }
  EngineStats S = Eng.stats();
  EXPECT_EQ(S.SessionMisses, 1u);
  EXPECT_EQ(S.SessionHits, 3u);
  EXPECT_EQ(S.SessionsLive, 1u);
}

TEST(Engine, CompileVerbPopulatesPlanCacheForLaterRuns) {
  Engine Eng(testEngineOptions());
  JobRequest Req = smallRequest(false);

  CompileResponse First = Eng.compile(Req);
  ASSERT_TRUE(First.Status.Ok) << First.Status.Error;
  EXPECT_GT(First.Enumerated, 0u);
  EXPECT_GT(First.Promoted, 0u);
  EXPECT_FALSE(First.PlanCacheHit);
  EXPECT_FALSE(First.CacheKey.empty());

  CompileResponse Second = Eng.compile(Req);
  ASSERT_TRUE(Second.Status.Ok);
  EXPECT_TRUE(Second.PlanCacheHit);
  EXPECT_EQ(Second.Promoted, First.Promoted);
  EXPECT_EQ(Second.CacheKey, First.CacheKey);

  // A fresh session rides the cached plan set instead of re-enumerating.
  RunResponse Run = Eng.run(Req);
  ASSERT_TRUE(Run.Status.Ok) << Run.Status.Error;
  EXPECT_TRUE(Run.PlanCacheHit);
}

// Regression: the plan-cache key must carry the requested format, so a
// `--format=ell` compile after a CSR compile of the same job is a cache
// miss with its own key — not a silently served CSR plan set.
TEST(Engine, CompileWithFormatIsNotServedTheCsrCacheEntry) {
  Engine Eng(testEngineOptions());
  JobRequest Req = smallRequest(false);

  CompileResponse Csr = Eng.compile(Req);
  ASSERT_TRUE(Csr.Status.Ok) << Csr.Status.Error;
  EXPECT_FALSE(Csr.PlanCacheHit);

  JobRequest EllReq = Req;
  EllReq.Format = "ell";
  CompileResponse Ell = Eng.compile(EllReq);
  ASSERT_TRUE(Ell.Status.Ok) << Ell.Status.Error;
  EXPECT_FALSE(Ell.PlanCacheHit) << "ell compile rode the CSR cache entry";
  EXPECT_NE(Ell.CacheKey, Csr.CacheKey);

  // Each population hits only itself on the second round.
  EXPECT_TRUE(Eng.compile(Req).PlanCacheHit);
  EXPECT_TRUE(Eng.compile(EllReq).PlanCacheHit);
}

// Distinct formats get distinct sessions, and every format's warm output
// matches the CSR session bitwise (the format kernels preserve CSR
// accumulation order).
TEST(Engine, FormatSessionsAreDistinctAndAgreeBitwise) {
  Engine Eng(testEngineOptions());
  JobRequest Req = smallRequest();
  RunResponse Base = Eng.run(Req);
  ASSERT_TRUE(Base.Status.Ok) << Base.Status.Error;

  for (const char *Format : {"ell", "sell", "hyb", "auto"}) {
    SCOPED_TRACE(Format);
    JobRequest FReq = Req;
    FReq.Format = Format;
    RunResponse First = Eng.run(FReq);
    ASSERT_TRUE(First.Status.Ok) << First.Status.Error;
    EXPECT_FALSE(First.SessionCacheHit) << "format reused the CSR session";
    ASSERT_EQ(First.Output.size(), Base.Output.size());
    EXPECT_EQ(std::memcmp(First.Output.data(), Base.Output.data(),
                          Base.Output.size() * sizeof(float)),
              0);
    RunResponse Warm = Eng.run(FReq);
    ASSERT_TRUE(Warm.Status.Ok);
    EXPECT_TRUE(Warm.SessionCacheHit);
    EXPECT_EQ(Warm.SteadyAllocations, 0u);
  }
}

TEST(Engine, UnknownOrBackwardOnlyFormatIsARequestError) {
  Engine Eng(testEngineOptions());
  for (const char *Format : {"csc", "coo", "banana"}) {
    SCOPED_TRACE(Format);
    JobRequest Req = smallRequest();
    Req.Format = Format;
    RunResponse R = Eng.run(Req);
    EXPECT_FALSE(R.Status.Ok);
    EXPECT_NE(R.Status.Error.find("format"), std::string::npos);
    JobRequest CReq = smallRequest(false);
    CReq.Format = Format;
    EXPECT_FALSE(Eng.compile(CReq).Status.Ok);
  }
}

TEST(Engine, SessionLruEvictsButEvictedConfigStillRuns) {
  EngineOptions Opts = testEngineOptions();
  Opts.SessionCapacity = 2;
  Engine Eng(Opts);

  JobRequest A = smallRequest();
  JobRequest B = smallRequest();
  B.KOut = 16; // different session key
  JobRequest C = smallRequest();
  C.KOut = 20;

  ASSERT_TRUE(Eng.run(A).Status.Ok);
  ASSERT_TRUE(Eng.run(B).Status.Ok);
  ASSERT_TRUE(Eng.run(C).Status.Ok); // evicts A's session
  EXPECT_EQ(Eng.stats().SessionEvictions, 1u);
  EXPECT_EQ(Eng.stats().SessionsLive, 2u);

  RunResponse Again = Eng.run(A); // rebuilt, not a crash
  ASSERT_TRUE(Again.Status.Ok);
  EXPECT_FALSE(Again.SessionCacheHit);
  EXPECT_EQ(Again.RunIndex, 1u);
}

//===----------------------------------------------------------------------===//
// Daemon end-to-end over a real Unix socket
//===----------------------------------------------------------------------===//

TEST(Server, EightConcurrentClientsGetIdenticalAnswers) {
  ServerOptions Opts;
  Opts.SocketPath = uniqueSocketPath("conc");
  Opts.Engine = testEngineOptions();
  Server Srv(Opts);
  std::string Err;
  ASSERT_TRUE(Srv.start(&Err)) << Err;

  // Reference answer from the engine directly (same process, same pool).
  JobRequest Req = smallRequest();
  RunResponse Reference = Srv.engine().run(Req);
  ASSERT_TRUE(Reference.Status.Ok) << Reference.Status.Error;

  constexpr int NumClients = 8;
  std::vector<RunResponse> Got(NumClients);
  std::vector<std::string> ClientErr(NumClients);
  std::vector<std::thread> Threads;
  for (int I = 0; I < NumClients; ++I)
    Threads.emplace_back([&, I] {
      Client C;
      if (!C.connect(Opts.SocketPath, &ClientErr[I]))
        return;
      C.run(Req, Got[I], &ClientErr[I]);
    });
  for (std::thread &T : Threads)
    T.join();

  for (int I = 0; I < NumClients; ++I) {
    ASSERT_TRUE(ClientErr[I].empty()) << "client " << I << ": " << ClientErr[I];
    ASSERT_TRUE(Got[I].Status.Ok) << Got[I].Status.Error;
    ASSERT_EQ(Got[I].Output.size(), Reference.Output.size());
    EXPECT_EQ(std::memcmp(Got[I].Output.data(), Reference.Output.data(),
                          Reference.Output.size() * sizeof(float)),
              0)
        << "client " << I << " diverged";
    EXPECT_TRUE(Got[I].SessionCacheHit) << "client " << I;
  }

  // Stats + graceful shutdown through the protocol.
  Client C;
  ASSERT_TRUE(C.connect(Opts.SocketPath, &Err)) << Err;
  StatsResponse Stats;
  ASSERT_TRUE(C.stats(Stats, &Err)) << Err;
  EXPECT_TRUE(Stats.Status.Ok);
  EXPECT_GE(Stats.RunRequests, static_cast<uint64_t>(NumClients));
  EXPECT_GE(Stats.SessionHits, static_cast<uint64_t>(NumClients));

  ShutdownResponse Ack;
  ASSERT_TRUE(C.shutdown(Ack, &Err)) << Err;
  EXPECT_TRUE(Ack.Status.Ok);
  Srv.wait();
  EXPECT_FALSE(Srv.running());
  // Socket file is unlinked on drain.
  EXPECT_NE(::access(Opts.SocketPath.c_str(), F_OK), 0);
}

TEST(Server, MalformedFramesGetFramedErrorsAndServerSurvives) {
  ServerOptions Opts;
  Opts.SocketPath = uniqueSocketPath("mal");
  Opts.Engine = testEngineOptions();
  Server Srv(Opts);
  std::string Err;
  ASSERT_TRUE(Srv.start(&Err)) << Err;

  {
    // A frame whose payload is not a valid request: expect a framed error
    // response with the status byte set, not a dropped connection.
    Client C;
    ASSERT_TRUE(C.connect(Opts.SocketPath, &Err)) << Err;
    // Client enforces verb echo, so drive this via compile with an empty
    // model: the server answers with a decoded, framed error response.
    JobRequest Bad;
    Bad.ModelText = ""; // parse failure server-side
    Bad.GraphSpec = "synth:mycielskian";
    CompileResponse CompResp;
    ASSERT_TRUE(C.compile(Bad, CompResp, &Err)) << Err;
    EXPECT_FALSE(CompResp.Status.Ok);
    EXPECT_FALSE(CompResp.Status.Error.empty());
  }

  // The daemon still serves good requests afterwards.
  Client C2;
  ASSERT_TRUE(C2.connect(Opts.SocketPath, &Err)) << Err;
  RunResponse Good;
  ASSERT_TRUE(C2.run(smallRequest(), Good, &Err)) << Err;
  EXPECT_TRUE(Good.Status.Ok) << Good.Status.Error;

  Srv.requestStop();
  Srv.wait();
  EXPECT_GE(Srv.counters().RequestsServed, 2u);
}
