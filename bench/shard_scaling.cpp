//===- shard_scaling.cpp - Sharded execution scaling sweep --------------------===//
//
// Sweeps the sharded executor over synthetic R-MAT graphs on the measured
// CPU platform: nodes x shards x threads, reporting the one-time
// partition/build cost and the per-iteration forward time, with every
// sharded output checked bitwise against the whole-graph run before it is
// reported (a scaling number for a wrong answer is worthless).
//
// All records here are wall-clock measurements, so their baseline entries
// carry gate:false — granii-bench-diff reports them without failing CI on
// machine-dependent noise. --smoke shrinks the sweep for the CI job;
// --json=<file> writes granii-bench-v1 records.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "assoc/Enumerate.h"
#include "assoc/Prune.h"
#include "graph/Generators.h"
#include "models/Models.h"
#include "runtime/Executor.h"
#include "support/Str.h"

#include <cstdio>
#include <cstring>

using namespace granii;
using namespace granii::bench;

namespace {

bool bitwiseEqual(const DenseMatrix &A, const DenseMatrix &B) {
  return A.rows() == B.rows() && A.cols() == B.cols() &&
         std::memcmp(A.data(), B.data(),
                     static_cast<size_t>(A.size()) * sizeof(float)) == 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = consumeValueFlag(argc, argv, "json");
  bool Smoke = consumeBoolFlag(argc, argv, "smoke");
  const int Reps = 3;
  BenchReport Report;

  std::vector<int64_t> NodeCounts = Smoke
                                        ? std::vector<int64_t>{1 << 12}
                                        : std::vector<int64_t>{1 << 14,
                                                               1 << 16,
                                                               1 << 18};
  std::vector<int> ShardCounts = {1, 2, 4, 8};
  std::vector<int> ThreadCounts = Smoke ? std::vector<int>{4}
                                        : std::vector<int>{1, 4};
  const int64_t K = Smoke ? 16 : 32;

  std::printf("Sharded scaling: GCN forward per-iteration time (ms) on the "
              "measured CPU platform, R-MAT graphs (avg degree 16)\n\n");

  GnnModel Model = makeModel(ModelKind::GCN);
  std::vector<CompositionPlan> Plans =
      pruneCompositions(enumerateCompositions(Model.Root));
  if (Plans.empty()) {
    std::fprintf(stderr, "error: no surviving GCN plans\n");
    return 1;
  }
  const CompositionPlan &Plan = Plans[0];

  std::vector<std::string> Header = {"nodes", "edges",    "shards",
                                     "cut%",  "threads",  "setup ms",
                                     "ms/iter", "vs whole"};
  std::vector<std::vector<std::string>> Table;
  int Failures = 0;

  for (int64_t N : NodeCounts) {
    Graph G = makeRmat(N, N * 16, 0.57, 0.19, 0.19,
                       /*Seed=*/90 + static_cast<uint64_t>(N),
                       "rmat-" + std::to_string(N));
    LayerParams Params = makeLayerParams(Model, G, K, K, 11);
    DimBinding Binding = Params.inputs().binding(&Plan);

    for (int Threads : ThreadCounts) {
      Executor Exec(HardwareModel::byName("cpu"), Threads);

      // Whole-graph reference for this thread count: correctness anchor
      // and the denominator of the "vs whole" column.
      PlanWorkspace WsWhole;
      WsWhole.configure(Plan, Binding, /*Training=*/false);
      ExecResult Whole;
      Exec.run(Plan, Params.inputs(), Params.Stats, WsWhole, Whole);
      Exec.run(Plan, Params.inputs(), Params.Stats, WsWhole, Whole);

      for (int Shards : ShardCounts) {
        ShardSpec Sharding{Shards, ""};
        PlanWorkspace Ws;
        Ws.configure(Plan, Binding, /*Training=*/false);
        ExecResult First;
        Exec.run(Plan, Params.inputs(), Params.Stats, Ws, First,
                 ReorderPolicy::None, SparseFormat::Csr, Sharding);
        if (!bitwiseEqual(First.Output, Whole.Output)) {
          std::fprintf(stderr,
                       "error: sharded output differs from whole-graph "
                       "(n=%lld shards=%d threads=%d)\n",
                       static_cast<long long>(N), Shards, Threads);
          ++Failures;
          continue;
        }
        std::vector<double> Samples;
        ExecResult R;
        for (int Rep = 0; Rep < Reps; ++Rep) {
          Exec.run(Plan, Params.inputs(), Params.Stats, Ws, R,
                   ReorderPolicy::None, SparseFormat::Csr, Sharding);
          Samples.push_back(R.ForwardSeconds);
        }
        double CutPct = 0.0;
        if (Shards > 1) {
          // Re-derive the partition the executor used for the cut column
          // (the partitioner is deterministic in its inputs).
          Graph WithSelf = G.withSelfLoops();
          shard::GraphPartition Part =
              shard::partitionGraph(WithSelf.adjacency(), Shards);
          CutPct = Part.cutFraction() * 100.0;
        }
        double MedianMs = Samples[Samples.size() / 2] * 1e3;
        Table.push_back(
            {std::to_string(N), std::to_string(G.numEdges()),
             std::to_string(Shards), formatDouble(CutPct, 1),
             std::to_string(Threads),
             formatDouble(First.SetupSeconds * 1e3, 3),
             formatDouble(MedianMs, 3),
             formatSpeedup(Whole.ForwardSeconds / Samples[0])});
        if (!JsonPath.empty())
          Report.add(BenchReport::makeRecord(
              "shard_scaling/n" + std::to_string(N) + "/s" +
                  std::to_string(Shards) + "/t" + std::to_string(Threads),
              G.name(), K, K, "none", Samples, /*Bytes=*/0.0));
      }
    }
  }

  std::printf("%s\n", renderTable(Header, Table).c_str());
  std::printf("Every sharded row was checked bitwise against its "
              "whole-graph reference before being reported.\n");

  if (!JsonPath.empty()) {
    std::string WriteError;
    if (!Report.write(JsonPath, &WriteError)) {
      std::fprintf(stderr, "error: %s\n", WriteError.c_str());
      return 1;
    }
    std::fprintf(stderr, "[shard_scaling] wrote machine-readable report "
                 "to %s\n",
                 JsonPath.c_str());
  }
  return Failures == 0 ? 0 : 1;
}
