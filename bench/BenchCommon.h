//===- BenchCommon.h - Shared experiment harness infrastructure -*- C++ -*-===//
///
/// \file
/// Common machinery for the paper-reproduction harnesses in bench/: the
/// three platforms with their trained cost models (CPU models are trained
/// on measured kernel times and cached on disk), the Table II evaluation
/// suite, the embedding-size grid, and the (baseline, GRANII) cell runner
/// that produces one speedup data point.
///
//===----------------------------------------------------------------------===//

#ifndef GRANII_BENCH_BENCHCOMMON_H
#define GRANII_BENCH_BENCHCOMMON_H

#include "cost/Trainer.h"
#include "granii/Granii.h"
#include "models/Baselines.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace granii {
namespace bench {

/// Lazily-initialized shared state for all harnesses.
class BenchContext {
public:
  static BenchContext &get();

  /// Platforms in Table III order: h100, a100, cpu.
  const std::vector<HardwareModel> &platforms() const { return Platforms; }
  HardwareModel platform(const std::string &Name) const;

  /// Pins the kernel thread pool to \p NumThreads (<= 0 restores the
  /// GRANII_NUM_THREADS / hardware default). Harness mains call this before
  /// any measurement; measured cost-model caches are stamped with the
  /// thread count, so profiles taken at different counts never mix.
  void setThreads(int NumThreads);

  /// The trained per-primitive cost model for \p Hw. Cached on disk under
  /// costModelCacheDir() (GRANII_CACHE_DIR, default ./.granii-cache) as
  /// granii_costmodel_<hw>.cache for simulated platforms and
  /// granii_costmodel_<hw>_t<threads>.cache for measured ones (the first
  /// CPU run profiles kernels).
  const CostModel &costFor(const std::string &Hw);

  /// The six Table II stand-ins (RD, CA, MC, BL, AU, OP).
  const std::vector<Graph> &evalGraphs();
  const std::vector<std::string> &evalCodes() const { return Codes; }

  /// A GRANII optimizer for (model, hardware), constructed once.
  Optimizer &optimizer(ModelKind Kind, const std::string &Hw, int Hops = 2);

  /// Iteration count all experiments amortize over (paper: 100).
  int iterations() const { return 100; }

private:
  BenchContext();

  std::vector<HardwareModel> Platforms;
  std::vector<std::string> Codes;
  std::vector<Graph> Graphs;
  bool GraphsBuilt = false;
  std::map<std::string, std::unique_ptr<LearnedCostModel>> CostModels;
  std::map<std::string, std::unique_ptr<Optimizer>> Optimizers;
};

/// Embedding (K_in, K_out) grid. GAT uses only increasing combinations
/// (paper §VI-B: the only scenario where the decision is non-trivial).
std::vector<std::pair<int64_t, int64_t>> embeddingCombos(ModelKind Kind);

/// One experiment cell: one (system, model, hardware, graph, sizes, mode).
struct CellResult {
  double BaselineSeconds = 0.0; ///< framework default, Iterations iters
  double GraniiSeconds = 0.0;   ///< GRANII choice incl. online overheads
  double Speedup = 0.0;
  size_t PlanIndex = 0;
  Selection Sel;
  /// Cold-cache bytes moved by one forward pass of the selected plan
  /// (analytic, from the primitive descriptors).
  double GraniiBytes = 0.0;
};

/// Runs one cell end to end (executes both plans once; 100-iteration totals
/// follow the setup/per-iteration accounting). A non-None \p Reorder runs
/// the GRANII side through the workspace path on a relabeled graph:
/// permutation construction lands in setup (amortized over the horizon),
/// the per-iteration feature gather / output scatter in forward time, so
/// the reported speedup already pays reordering's full cost.
CellResult runCell(BenchContext &Ctx, BaselineSystem Sys, ModelKind Kind,
                   const std::string &Hw, const Graph &G, int64_t KIn,
                   int64_t KOut, bool Training,
                   ReorderPolicy Reorder = ReorderPolicy::None);

/// Consumes a "--reorder=<policy>" / "--reorder <policy>" argument from
/// \p argv (compacting it like micro_kernels' --threads handling) and
/// returns the parsed policy; None when absent. Exits with a diagnostic on
/// an unknown policy name.
ReorderPolicy consumeReorderFlag(int &argc, char **argv);

/// Geomean over cell speedups.
double geomeanSpeedup(const std::vector<CellResult> &Cells);

/// "1.24x"-style formatting.
std::string formatSpeedup(double Value);

/// Consumes a "--<name>=<value>" / "--<name> <value>" argument from \p argv
/// (compacting like consumeReorderFlag). Returns the value, or an empty
/// string when the flag is absent.
std::string consumeValueFlag(int &argc, char **argv, const std::string &Name);

/// Consumes a boolean "--<name>" flag from \p argv; returns its presence.
bool consumeBoolFlag(int &argc, char **argv, const std::string &Name);

/// One machine-readable measurement in a granii-bench-v1 report. Seconds
/// statistics are over \p Repetitions samples of the same benchmark.
struct BenchRecord {
  std::string Id;      ///< stable id, e.g. "table3/DGL/h100/I/GCN/RD/32x32"
  std::string Graph;   ///< graph name, or "-" when not graph-bound
  int64_t KIn = 0;
  int64_t KOut = 0;
  int Threads = 0;     ///< kernel pool size at measurement time
  /// SIMD dispatch level the measurement ran at ("scalar", "avx2",
  /// "avx512"). Stamped by makeRecord from the kernel library's active
  /// level; granii-bench-diff uses it to skip (rather than flag) baseline
  /// records whose level the comparing host cannot execute.
  std::string Isa;
  /// Sparse storage format the measurement ran under ("csr", "ell", ...).
  /// Empty for format-agnostic records; granii-bench-diff skips baseline
  /// records whose format the head build does not list in its "formats"
  /// header (mirroring the ISA skip).
  std::string Format;
  std::string Reorder = "none";
  int Repetitions = 0;
  double MedianSeconds = 0.0;
  double P10Seconds = 0.0;
  double P90Seconds = 0.0;
  double Bytes = 0.0;  ///< analytic bytes moved per measured unit (0 = n/a)
};

/// Accumulates BenchRecords and serializes them as granii-bench-v1 JSON
/// (see docs/OBSERVABILITY.md for the schema). The report header carries
/// the git SHA, the thread count shared by all records, the SIMD levels
/// ("isa_levels") the producing host can execute, and the sparse storage
/// formats ("formats") the producing build can run.
class BenchReport {
public:
  /// Builds one record from repeated seconds samples; median/p10/p90 are
  /// computed here, Threads is stamped from the current pool size.
  static BenchRecord makeRecord(std::string Id, std::string Graph,
                                int64_t KIn, int64_t KOut,
                                std::string Reorder,
                                const std::vector<double> &SecondsSamples,
                                double Bytes);

  void add(BenchRecord Record) { Records.push_back(std::move(Record)); }
  bool empty() const { return Records.empty(); }

  std::string toJson() const;
  bool write(const std::string &Path, std::string *ErrorOut = nullptr) const;

private:
  std::vector<BenchRecord> Records;
};

/// The build SHA stamped into reports: $GRANII_GIT_SHA when set (CI sets it
/// to $GITHUB_SHA), else `git rev-parse HEAD` when available, else
/// "unknown".
std::string benchGitSha();

} // namespace bench
} // namespace granii

#endif // GRANII_BENCH_BENCHCOMMON_H
