//===- costmodel_accuracy.cpp - §VI-G: learned cost-model accuracy ----------===//
//
// The paper's §VI-G argues GRANII's cost models predict well enough to pick
// near-optimal compositions. This harness quantifies that directly on the
// *evaluation* graphs (disjoint from the training suite): per primitive
// kind, the log-space RMSE between predicted and observed kernel times, and
// the split-frequency feature importances showing which input features the
// models actually use.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "cost/Trainer.h"
#include "support/Stats.h"
#include "support/Str.h"

#include <cmath>
#include <cstdio>

using namespace granii;
using namespace granii::bench;

int main() {
  BenchContext &Ctx = BenchContext::get();

  for (const char *Hw : {"h100", "cpu"}) {
    const auto &Learned =
        static_cast<const LearnedCostModel &>(Ctx.costFor(Hw));
    // Held-out samples: profile the primitives on the *evaluation* graphs.
    std::vector<ProfileSample> Holdout = collectProfileData(
        HardwareModel::byName(Hw), Ctx.evalGraphs(), {16, 64});

    std::map<PrimitiveKind, std::vector<double>> LogErrors;
    for (const ProfileSample &S : Holdout) {
      const GbtModel *Model = Learned.model(S.Kind);
      if (!Model)
        continue;
      double Predicted = Model->predict(S.Features.data());
      LogErrors[S.Kind].push_back(Predicted - std::log(S.Seconds));
    }

    std::vector<std::string> Header = {"Primitive", "holdout n",
                                       "geo pred/actual", "log-RMSE"};
    std::vector<std::vector<std::string>> Table;
    for (const auto &[Kind, Errors] : LogErrors) {
      double Bias = 0.0, Sq = 0.0;
      for (double E : Errors) {
        Bias += E;
        Sq += E * E;
      }
      Bias /= static_cast<double>(Errors.size());
      double Rmse = std::sqrt(Sq / static_cast<double>(Errors.size()));
      Table.push_back({primitiveName(Kind), std::to_string(Errors.size()),
                       formatDouble(std::exp(Bias), 2),
                       formatDouble(Rmse, 2)});
    }
    std::printf("== %s cost models on held-out evaluation graphs ==\n%s\n",
                Hw, renderTable(Header, Table).c_str());

    // Which input features drive the weighted-SpMM model?
    if (const GbtModel *Spmm = Learned.model(PrimitiveKind::SpMMWeighted)) {
      std::vector<double> Importance = Spmm->featureImportance();
      std::printf("spmm_w feature importances (split frequency):\n");
      for (size_t F = 0; F < Importance.size(); ++F)
        if (Importance[F] > 0.02)
          std::printf("  %-16s %.2f\n", costFeatureNames()[F].c_str(),
                      Importance[F]);
      std::printf("\n");
    }
  }
  std::printf("A geo pred/actual near 1.0 and log-RMSE well under log(2)="
              "0.69 mean predictions are within ~2x on unseen graphs — "
              "sufficient for relative composition ranking (paper §VI-G).\n");
  return 0;
}
