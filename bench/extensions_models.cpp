//===- extensions_models.cpp - Speedups on the extension models -------------===//
//
// Beyond the paper's five models, this reproduction ships GraphSAGE-mean
// (paper §VI-E supports SAGE via sampling) and a two-head additive GAT.
// This harness runs the Table III protocol on them: GRANII's geomean
// inference/training speedup over both framework defaults per platform.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Str.h"

#include <cstdio>

using namespace granii;
using namespace granii::bench;

int main(int argc, char **argv) {
  BenchContext &Ctx = BenchContext::get();
  ReorderPolicy Reorder = consumeReorderFlag(argc, argv);
  std::vector<std::string> Header = {"Model", "System", "HW",
                                     "Inference", "Training"};
  std::vector<std::vector<std::string>> Table;

  for (ModelKind Kind : {ModelKind::SAGE, ModelKind::GATMultiHead}) {
    std::vector<std::pair<int64_t, int64_t>> Combos =
        Kind == ModelKind::GATMultiHead
            ? std::vector<std::pair<int64_t, int64_t>>{{32, 64}, {32, 128}}
            : embeddingCombos(Kind);
    for (BaselineSystem Sys : allSystems()) {
      for (const char *Hw : {"h100", "a100", "cpu"}) {
        std::vector<CellResult> Infer, Train;
        for (const Graph &G : Ctx.evalGraphs()) {
          for (auto [KIn, KOut] : Combos) {
            Infer.push_back(runCell(Ctx, Sys, Kind, Hw, G, KIn, KOut,
                                    /*Training=*/false, Reorder));
            Train.push_back(runCell(Ctx, Sys, Kind, Hw, G, KIn, KOut,
                                    /*Training=*/true, Reorder));
          }
        }
        Table.push_back({modelName(Kind), systemName(Sys), Hw,
                         formatSpeedup(geomeanSpeedup(Infer)),
                         formatSpeedup(geomeanSpeedup(Train))});
      }
    }
    std::fprintf(stderr, "[extensions] %s done\n", modelName(Kind).c_str());
  }

  std::printf("Extension models under the Table III protocol (%d "
              "iterations)\n\n%s\n",
              Ctx.iterations(), renderTable(Header, Table).c_str());
  std::printf("sage: the mean-normalization admits the same dynamic-vs-"
              "precompute choice as GCN; gat2h: each attention head makes "
              "its own reuse/recompute decision (4 compositions).\n");
  return 0;
}
