//===- table5_layers.cpp - Paper Table V: multi-layer GNNs ------------------===//
//
// Reproduces Table V: GRANII's speedup over the WiseGraph defaults for
// GNNs with a varying number of layers; GRANII selects a composition per
// layer with its online stage (paper §VI-F).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Stats.h"
#include "support/Str.h"

#include <cstdio>

using namespace granii;
using namespace granii::bench;

namespace {

/// Total time of an L-layer stack; every layer maps Hidden -> Hidden except
/// the first (Features -> Hidden).
double stackSeconds(BenchContext &Ctx, ModelKind Kind, const Graph &G,
                    int Layers, bool UseGranii) {
  GnnModel Model = makeModel(Kind);
  Executor Exec(Ctx.platform("h100"));
  const int Iters = Ctx.iterations();
  const int64_t FeatureDim = 96, Hidden = 64;
  double Total = 0.0;
  for (int L = 0; L < Layers; ++L) {
    int64_t KIn = L == 0 ? FeatureDim : Hidden;
    LayerParams Params = makeLayerParams(Model, G, KIn, Hidden, 5 + L);
    CompositionPlan Plan =
        baselinePlan(BaselineSystem::WiseGraph, Model, KIn, Hidden);
    if (UseGranii) {
      Optimizer &Opt = Ctx.optimizer(Kind, "h100");
      Selection Sel = Opt.select(G, KIn, Hidden);
      Plan = Opt.promoted()[Sel.PlanIndex];
      Total += Sel.FeaturizeSeconds + Sel.SelectSeconds;
    }
    Total += Exec.run(Plan, Params.inputs(), Params.Stats)
                 .totalSeconds(Iters, false);
  }
  return Total;
}

} // namespace

int main() {
  BenchContext &Ctx = BenchContext::get();
  std::printf("Table V: GRANII speedup over WiseGraph defaults with "
              "multiple GNN layers (H100, %d iterations)\n\n",
              Ctx.iterations());

  std::vector<std::string> Header = {"Model", "1 layer", "2 layers",
                                     "3 layers", "4 layers"};
  std::vector<std::vector<std::string>> Table;

  for (ModelKind Kind : {ModelKind::GCN, ModelKind::GIN, ModelKind::TAGCN}) {
    std::vector<std::string> Line = {modelName(Kind)};
    for (int Layers : {1, 2, 3, 4}) {
      std::vector<double> Speedups;
      for (const Graph &G : Ctx.evalGraphs())
        Speedups.push_back(stackSeconds(Ctx, Kind, G, Layers, false) /
                           stackSeconds(Ctx, Kind, G, Layers, true));
      Line.push_back(formatSpeedup(geomeanOf(Speedups)));
    }
    Table.push_back(std::move(Line));
  }

  std::printf("%s\n", renderTable(Header, Table).c_str());
  std::printf("Speedups stay consistent as layers are added: sparsity does "
              "not change across layers for these models, so per-layer "
              "decisions compose (paper §VI-F).\n");
  return 0;
}
