//===- table4_end2end.cpp - Paper Table IV: end-to-end results --------------===//
//
// Reproduces Table IV: forward-pass execution times of end-to-end GCN and
// GAT models on the H100 platform, on the Reddit and ogbn-products
// stand-ins, with one hidden layer of varying width. An end-to-end model is
// input layer (features -> hidden) followed by an output layer (hidden ->
// classes), each selected independently by GRANII.
//
// --sharded (or --shards=N) adds a sharded-execution column per row: the
// same GRANII plan run through the shard pipeline, bitwise-checked against
// the whole-graph GRANII run. --graph=rmat:<nodes>:<edges>[:<seed>]
// replaces the paper workloads with one synthetic R-MAT instance (the CI
// scaling gate drives multi-million-node graphs through this). --smoke
// shrinks the sweep (GCN only, hidden 32) for the CI benchmark job.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "graph/Generators.h"
#include "graph/GraphSpec.h"
#include "shard/Shard.h"

#include "support/Str.h"

#include <cstdio>
#include <cstring>

using namespace granii;
using namespace granii::bench;

namespace {

/// Executes one two-layer forward pass, returning milliseconds per
/// iteration (setup amortized over the iteration horizon). \p Shards > 1
/// routes execution through the shard pipeline; \p MatchOut (when non-null)
/// accumulates a bitwise comparison of each layer's output against the
/// entry it holds for that layer (filled by a previous whole-graph call).
double twoLayerMillis(BenchContext &Ctx, ModelKind Kind, const Graph &G,
                      int64_t FeatureDim, int64_t HiddenDim, int64_t Classes,
                      bool UseGranii, BaselineSystem Sys,
                      ReorderPolicy Reorder, int Shards = 0,
                      std::vector<DenseMatrix> *MatchOut = nullptr,
                      bool *Matched = nullptr) {
  GnnModel Model = makeModel(Kind);
  Executor Exec(Ctx.platform("h100"));
  const int Iters = Ctx.iterations();
  double Total = 0.0;
  int64_t Dims[2][2] = {{FeatureDim, HiddenDim}, {HiddenDim, Classes}};
  size_t Layer = 0;
  for (auto [KIn, KOut] : Dims) {
    LayerParams Params = makeLayerParams(Model, G, KIn, KOut, 5);
    CompositionPlan Plan = baselinePlan(Sys, Model, KIn, KOut);
    // The baseline frameworks execute the graph as given; reordering is
    // part of the GRANII pipeline and charged to its side only.
    ReorderPolicy Policy = ReorderPolicy::None;
    if (UseGranii) {
      Optimizer &Opt = Ctx.optimizer(Kind, "h100");
      Selection Sel = Opt.select(G, KIn, KOut);
      Plan = Opt.promoted()[Sel.PlanIndex];
      Total += Sel.FeaturizeSeconds + Sel.SelectSeconds;
      Policy = Reorder;
    }
    // Execute through a per-layer workspace: the warm-up run plans and
    // allocates the buffer arena (and builds the vertex permutation), the
    // charged run is the allocation-free steady state a deployed iteration
    // loop actually pays for — its SetupSeconds still carry the one-time
    // reordering cost for honest amortized accounting.
    PlanWorkspace Ws;
    ExecResult R;
    ShardSpec Sharding{Shards, ""};
    Exec.run(Plan, Params.inputs(), Params.Stats, Ws, R, Policy,
             SparseFormat::Csr, Sharding);
    Exec.run(Plan, Params.inputs(), Params.Stats, Ws, R, Policy,
             SparseFormat::Csr, Sharding);
    Total += R.totalSeconds(Iters, false);
    if (MatchOut) {
      if (Layer < MatchOut->size()) {
        const DenseMatrix &Want = (*MatchOut)[Layer];
        bool Same =
            R.Output.rows() == Want.rows() &&
            R.Output.cols() == Want.cols() &&
            std::memcmp(R.Output.data(), Want.data(),
                        static_cast<size_t>(Want.size()) * sizeof(float)) ==
                0;
        if (Matched && !Same)
          *Matched = false;
      } else {
        MatchOut->push_back(R.Output);
      }
    }
    ++Layer;
  }
  return Total / Iters * 1e3;
}

} // namespace

int main(int argc, char **argv) {
  BenchContext &Ctx = BenchContext::get();
  ReorderPolicy Reorder = consumeReorderFlag(argc, argv);
  // --json=<file> writes the GRANII side of every (graph, model, hidden,
  // system) configuration as a granii-bench-v1 record (3 repetitions,
  // per-iteration seconds).
  std::string JsonPath = consumeValueFlag(argc, argv, "json");
  bool Smoke = consumeBoolFlag(argc, argv, "smoke");
  bool Sharded = consumeBoolFlag(argc, argv, "sharded");
  std::string ShardsArg = consumeValueFlag(argc, argv, "shards");
  std::string GraphSpec = consumeValueFlag(argc, argv, "graph");
  int64_t Shards = 0;
  if (!ShardsArg.empty() &&
      (!parseInt64(ShardsArg, Shards) || Shards < 2)) {
    std::fprintf(stderr, "error: --shards expects a count >= 2\n");
    return 2;
  }
  if (Sharded && Shards == 0)
    Shards = -1; // auto, resolved per graph below
  const int JsonReps = 3;
  BenchReport Report;
  std::printf("Table IV: end-to-end per-iteration forward time (ms) on H100 "
              "(two layers: features -> hidden -> classes)\n");
  std::printf("GRANII vertex reordering: %s\n\n",
              reorderPolicyName(Reorder).c_str());

  std::vector<std::string> Header = {"Graph",   "GNN",   "Hidden",
                                     "Wise",    "Wise+GRANII", "speedup",
                                     "DGL",     "DGL+GRANII",  "speedup"};
  if (Shards != 0) {
    Header.push_back("GRANII+shard");
    Header.push_back("bitwise");
  }
  std::vector<std::vector<std::string>> Table;

  struct Workload {
    std::string GraphName;
    int64_t FeatureDim;
    int64_t Classes;
  };
  // Feature/class counts follow the paper's Table IV datasets.
  std::vector<Workload> Workloads = {{"reddit", 602, 41},
                                     {"ogbn-products", 100, 47}};
  if (!GraphSpec.empty())
    // One custom synthetic instance; modest dims so the big-graph CI run
    // measures aggregation (the sharded path), not GEMM width.
    Workloads = {{GraphSpec, 32, 16}};
  std::vector<ModelKind> Models = {ModelKind::GCN, ModelKind::GAT};
  std::vector<int64_t> Hiddens = {32, 128, 512};
  if (Smoke) {
    Models = {ModelKind::GCN};
    Hiddens = {32};
  }

  int MismatchRows = 0;
  for (const Workload &W : Workloads) {
    Graph G = [&] {
      if (startsWith(W.GraphName, "rmat:") ||
          startsWith(W.GraphName, "synth:")) {
        std::string Spec = startsWith(W.GraphName, "rmat:")
                               ? "synth:" + W.GraphName
                               : W.GraphName;
        std::string Err;
        std::optional<Graph> Loaded = loadGraphSpec(Spec, &Err);
        if (!Loaded) {
          std::fprintf(stderr, "%s", Err.c_str());
          std::exit(2);
        }
        return *Loaded;
      }
      return makeEvaluationGraph(W.GraphName);
    }();
    int GraphShards = static_cast<int>(Shards);
    if (Shards < 0)
      GraphShards = shard::autoShardCount(G.numEdges());
    std::printf("graph %s: %lld nodes, %lld edges, shards=%d\n",
                G.name().c_str(), static_cast<long long>(G.numNodes()),
                static_cast<long long>(G.numEdges()), GraphShards);
    for (ModelKind Kind : Models) {
      int64_t FeatureDim = Kind == ModelKind::GAT ? 100 : W.FeatureDim;
      if (!GraphSpec.empty())
        FeatureDim = W.FeatureDim;
      for (int64_t Hidden : Hiddens) {
        std::vector<std::string> Line = {G.name(), modelName(Kind),
                                         std::to_string(Hidden)};
        std::vector<DenseMatrix> LayerOutputs;
        for (BaselineSystem Sys : allSystems()) {
          double Base = twoLayerMillis(Ctx, Kind, G, FeatureDim, Hidden,
                                       W.Classes, false, Sys, Reorder);
          double Granii = twoLayerMillis(Ctx, Kind, G, FeatureDim, Hidden,
                                         W.Classes, true, Sys, Reorder);
          if (!JsonPath.empty()) {
            std::vector<double> Samples = {Granii / 1e3};
            for (int Rep = 1; Rep < JsonReps; ++Rep)
              Samples.push_back(twoLayerMillis(Ctx, Kind, G, FeatureDim,
                                               Hidden, W.Classes, true, Sys,
                                               Reorder) /
                                1e3);
            Report.add(BenchReport::makeRecord(
                "table4/" + G.name() + "/" + modelName(Kind) + "/h" +
                    std::to_string(Hidden) + "/" + systemName(Sys),
                G.name(), FeatureDim, W.Classes,
                reorderPolicyName(Reorder), Samples, /*Bytes=*/0.0));
          }
          Line.push_back(formatDouble(Base, 3));
          Line.push_back(formatDouble(Granii, 3));
          Line.push_back(formatSpeedup(Base / Granii));
        }
        if (Shards != 0) {
          // Sharded GRANII run against the first system's plan choice.
          // Reordering is disabled on both sides of this comparison so the
          // sharded outputs can be checked bitwise against a dedicated
          // whole-graph reference run.
          bool Matched = true;
          double ShardMs = 0.0;
          if (GraphShards > 1) {
            twoLayerMillis(Ctx, Kind, G, FeatureDim, Hidden, W.Classes,
                           true, allSystems().front(), ReorderPolicy::None,
                           0, &LayerOutputs);
            ShardMs = twoLayerMillis(Ctx, Kind, G, FeatureDim, Hidden,
                                     W.Classes, true, allSystems().front(),
                                     ReorderPolicy::None, GraphShards,
                                     &LayerOutputs, &Matched);
          }
          if (!Matched)
            ++MismatchRows;
          Line.push_back(GraphShards > 1 ? formatDouble(ShardMs, 3) : "-");
          Line.push_back(GraphShards > 1 ? (Matched ? "yes" : "NO") : "-");
          if (!JsonPath.empty() && GraphShards > 1) {
            std::vector<double> Samples = {ShardMs / 1e3};
            for (int Rep = 1; Rep < JsonReps; ++Rep)
              Samples.push_back(
                  twoLayerMillis(Ctx, Kind, G, FeatureDim, Hidden,
                                 W.Classes, true, allSystems().front(),
                                 ReorderPolicy::None, GraphShards) /
                  1e3);
            Report.add(BenchReport::makeRecord(
                "table4/" + G.name() + "/" + modelName(Kind) + "/h" +
                    std::to_string(Hidden) + "/sharded",
                G.name(), FeatureDim, W.Classes, "none", Samples,
                /*Bytes=*/0.0));
          }
        }
        Table.push_back(std::move(Line));
      }
    }
  }

  std::printf("%s\n", renderTable(Header, Table).c_str());
  std::printf("Paper reference: speedups up to 5.14x (Wise GCN/32 on "
              "Reddit) and 2.54x (DGL GAT/1024 on ogbn-products); several "
              "1.00x rows where the default is already optimal.\n");
  if (Shards != 0)
    std::printf("Sharded rows are bitwise-compared against the whole-graph "
                "GRANII outputs per layer.\n");

  if (!JsonPath.empty()) {
    std::string WriteError;
    if (!Report.write(JsonPath, &WriteError)) {
      std::fprintf(stderr, "error: %s\n", WriteError.c_str());
      return 1;
    }
    std::fprintf(stderr, "[table4] wrote machine-readable report to %s\n",
                 JsonPath.c_str());
  }
  if (MismatchRows > 0) {
    std::fprintf(stderr,
                 "error: %d sharded row(s) were not bitwise identical to "
                 "the whole-graph execution\n",
                 MismatchRows);
    return 1;
  }
  return 0;
}
