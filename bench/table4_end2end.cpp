//===- table4_end2end.cpp - Paper Table IV: end-to-end results --------------===//
//
// Reproduces Table IV: forward-pass execution times of end-to-end GCN and
// GAT models on the H100 platform, on the Reddit and ogbn-products
// stand-ins, with one hidden layer of varying width. An end-to-end model is
// input layer (features -> hidden) followed by an output layer (hidden ->
// classes), each selected independently by GRANII.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "graph/Generators.h"

#include "support/Str.h"

#include <cstdio>

using namespace granii;
using namespace granii::bench;

namespace {

/// Executes one two-layer forward pass, returning milliseconds per
/// iteration (setup amortized over the iteration horizon).
double twoLayerMillis(BenchContext &Ctx, ModelKind Kind, const Graph &G,
                      int64_t FeatureDim, int64_t HiddenDim, int64_t Classes,
                      bool UseGranii, BaselineSystem Sys,
                      ReorderPolicy Reorder) {
  GnnModel Model = makeModel(Kind);
  Executor Exec(Ctx.platform("h100"));
  const int Iters = Ctx.iterations();
  double Total = 0.0;
  int64_t Dims[2][2] = {{FeatureDim, HiddenDim}, {HiddenDim, Classes}};
  for (auto [KIn, KOut] : Dims) {
    LayerParams Params = makeLayerParams(Model, G, KIn, KOut, 5);
    CompositionPlan Plan = baselinePlan(Sys, Model, KIn, KOut);
    // The baseline frameworks execute the graph as given; reordering is
    // part of the GRANII pipeline and charged to its side only.
    ReorderPolicy Policy = ReorderPolicy::None;
    if (UseGranii) {
      Optimizer &Opt = Ctx.optimizer(Kind, "h100");
      Selection Sel = Opt.select(G, KIn, KOut);
      Plan = Opt.promoted()[Sel.PlanIndex];
      Total += Sel.FeaturizeSeconds + Sel.SelectSeconds;
      Policy = Reorder;
    }
    // Execute through a per-layer workspace: the warm-up run plans and
    // allocates the buffer arena (and builds the vertex permutation), the
    // charged run is the allocation-free steady state a deployed iteration
    // loop actually pays for — its SetupSeconds still carry the one-time
    // reordering cost for honest amortized accounting.
    PlanWorkspace Ws;
    ExecResult R;
    Exec.run(Plan, Params.inputs(), Params.Stats, Ws, R, Policy);
    Exec.run(Plan, Params.inputs(), Params.Stats, Ws, R, Policy);
    Total += R.totalSeconds(Iters, false);
  }
  return Total / Iters * 1e3;
}

} // namespace

int main(int argc, char **argv) {
  BenchContext &Ctx = BenchContext::get();
  ReorderPolicy Reorder = consumeReorderFlag(argc, argv);
  // --json=<file> writes the GRANII side of every (graph, model, hidden,
  // system) configuration as a granii-bench-v1 record (3 repetitions,
  // per-iteration seconds).
  std::string JsonPath = consumeValueFlag(argc, argv, "json");
  const int JsonReps = 3;
  BenchReport Report;
  std::printf("Table IV: end-to-end per-iteration forward time (ms) on H100 "
              "(two layers: features -> hidden -> classes)\n");
  std::printf("GRANII vertex reordering: %s\n\n",
              reorderPolicyName(Reorder).c_str());

  std::vector<std::string> Header = {"Graph",   "GNN",   "Hidden",
                                     "Wise",    "Wise+GRANII", "speedup",
                                     "DGL",     "DGL+GRANII",  "speedup"};
  std::vector<std::vector<std::string>> Table;

  struct Workload {
    const char *GraphName;
    int64_t FeatureDim;
    int64_t Classes;
  };
  // Feature/class counts follow the paper's Table IV datasets.
  std::vector<Workload> Workloads = {{"reddit", 602, 41},
                                     {"ogbn-products", 100, 47}};

  for (const Workload &W : Workloads) {
    Graph G = makeEvaluationGraph(W.GraphName);
    for (ModelKind Kind : {ModelKind::GCN, ModelKind::GAT}) {
      int64_t FeatureDim = Kind == ModelKind::GAT ? 100 : W.FeatureDim;
      for (int64_t Hidden : {32, 128, 512}) {
        std::vector<std::string> Line = {W.GraphName, modelName(Kind),
                                         std::to_string(Hidden)};
        for (BaselineSystem Sys : allSystems()) {
          double Base = twoLayerMillis(Ctx, Kind, G, FeatureDim, Hidden,
                                       W.Classes, false, Sys, Reorder);
          double Granii = twoLayerMillis(Ctx, Kind, G, FeatureDim, Hidden,
                                         W.Classes, true, Sys, Reorder);
          if (!JsonPath.empty()) {
            std::vector<double> Samples = {Granii / 1e3};
            for (int Rep = 1; Rep < JsonReps; ++Rep)
              Samples.push_back(twoLayerMillis(Ctx, Kind, G, FeatureDim,
                                               Hidden, W.Classes, true, Sys,
                                               Reorder) /
                                1e3);
            Report.add(BenchReport::makeRecord(
                "table4/" + std::string(W.GraphName) + "/" +
                    modelName(Kind) + "/h" + std::to_string(Hidden) + "/" +
                    systemName(Sys),
                W.GraphName, FeatureDim, W.Classes,
                reorderPolicyName(Reorder), Samples, /*Bytes=*/0.0));
          }
          Line.push_back(formatDouble(Base, 3));
          Line.push_back(formatDouble(Granii, 3));
          Line.push_back(formatSpeedup(Base / Granii));
        }
        Table.push_back(std::move(Line));
      }
    }
  }

  std::printf("%s\n", renderTable(Header, Table).c_str());
  std::printf("Paper reference: speedups up to 5.14x (Wise GCN/32 on "
              "Reddit) and 2.54x (DGL GAT/1024 on ogbn-products); several "
              "1.00x rows where the default is already optimal.\n");

  if (!JsonPath.empty()) {
    std::string WriteError;
    if (!Report.write(JsonPath, &WriteError)) {
      std::fprintf(stderr, "error: %s\n", WriteError.c_str());
      return 1;
    }
    std::fprintf(stderr, "[table4] wrote machine-readable report to %s\n",
                 JsonPath.c_str());
  }
  return 0;
}
