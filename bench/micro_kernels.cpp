//===- micro_kernels.cpp - Measured kernel micro-benchmarks -----------------===//
//
// google-benchmark timings of the primitive kernel library on the machine
// running the reproduction (the "real measurement" counterpart of the
// simulated platforms). Every benchmark drives the destination-passing
// `...Into` kernel forms against a preallocated destination, mirroring the
// runtime's buffer-arena execution: the loops measure kernel compute, not
// the allocator.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "graph/Generators.h"
#include "graph/Reorder.h"
#include "hw/HardwareModel.h"
#include "kernels/Dispatch.h"
#include "kernels/FormatKernels.h"
#include "kernels/Kernels.h"
#include "support/Diag.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

using namespace granii;

namespace {

DenseMatrix randomDense(int64_t Rows, int64_t Cols, uint64_t Seed) {
  Rng R(Seed);
  DenseMatrix M(Rows, Cols);
  M.fillRandom(R);
  return M;
}

const Graph &benchGraph() {
  static Graph G = makeRmat(2000, 30000, 0.55, 0.2, 0.15, 77);
  return G;
}

} // namespace

static void BM_Gemm(benchmark::State &State) {
  int64_t N = State.range(0), K = State.range(1);
  DenseMatrix A = randomDense(N, K, 1), B = randomDense(K, K, 2);
  DenseMatrix C(N, K);
  for (auto _ : State) {
    kernels::gemmInto(A, B, C);
    benchmark::DoNotOptimize(C.data());
  }
  State.SetItemsProcessed(State.iterations() * 2 * N * K * K);
}
BENCHMARK(BM_Gemm)->Args({1024, 32})->Args({1024, 64})->Args({2048, 64});

static void BM_SpmmUnweighted(benchmark::State &State) {
  const Graph &G = benchGraph();
  DenseMatrix H = randomDense(G.numNodes(), State.range(0), 3);
  DenseMatrix Out(G.numNodes(), State.range(0));
  for (auto _ : State) {
    kernels::spmmInto(G.adjacency(), H, Semiring::plusCopy(), Out);
    benchmark::DoNotOptimize(Out.data());
  }
  State.SetItemsProcessed(State.iterations() * G.numEdges() * State.range(0));
}
BENCHMARK(BM_SpmmUnweighted)->Arg(32)->Arg(64)->Arg(128);

static void BM_SpmmWeighted(benchmark::State &State) {
  const Graph &G = benchGraph();
  CsrMatrix A = G.adjacency();
  std::vector<float> Vals(static_cast<size_t>(A.nnz()), 0.5f);
  A.setValues(std::move(Vals));
  DenseMatrix H = randomDense(G.numNodes(), State.range(0), 4);
  DenseMatrix Out(G.numNodes(), State.range(0));
  for (auto _ : State) {
    kernels::spmmInto(A, H, Semiring::plusTimes(), Out);
    benchmark::DoNotOptimize(Out.data());
  }
  State.SetItemsProcessed(State.iterations() * 2 * G.numEdges() *
                          State.range(0));
}
BENCHMARK(BM_SpmmWeighted)->Arg(32)->Arg(64)->Arg(128);

static void BM_SddmmDot(benchmark::State &State) {
  const Graph &G = benchGraph();
  DenseMatrix U = randomDense(G.numNodes(), State.range(0), 5);
  std::vector<float> Out(static_cast<size_t>(G.numEdges()));
  for (auto _ : State) {
    kernels::sddmmInto(G.adjacency(), U, U, Semiring::plusTimes(), Out);
    benchmark::DoNotOptimize(Out.data());
  }
}
BENCHMARK(BM_SddmmDot)->Arg(32)->Arg(64);

static void BM_ScaleSparseBoth(benchmark::State &State) {
  const Graph &G = benchGraph();
  std::vector<float> D(static_cast<size_t>(G.numNodes()), 0.7f);
  std::vector<float> OutVals(static_cast<size_t>(G.numEdges()));
  for (auto _ : State) {
    kernels::scaleSparseBothInto(G.adjacency(), D, D, OutVals);
    benchmark::DoNotOptimize(OutVals.data());
  }
}
BENCHMARK(BM_ScaleSparseBoth);

static void BM_RowBroadcast(benchmark::State &State) {
  DenseMatrix H = randomDense(4096, State.range(0), 6);
  std::vector<float> D(4096, 1.1f);
  DenseMatrix Out(4096, State.range(0));
  for (auto _ : State) {
    kernels::rowBroadcastMulInto(D, H, Out);
    benchmark::DoNotOptimize(Out.data());
  }
}
BENCHMARK(BM_RowBroadcast)->Arg(32)->Arg(128);

static void BM_DegreeOffsets(benchmark::State &State) {
  const Graph &G = benchGraph();
  std::vector<float> Out(static_cast<size_t>(G.numNodes()));
  for (auto _ : State) {
    kernels::degreeFromOffsetsInto(G.adjacency(), Out);
    benchmark::DoNotOptimize(Out.data());
  }
}
BENCHMARK(BM_DegreeOffsets);

static void BM_DegreeBinning(benchmark::State &State) {
  const Graph &G = benchGraph();
  std::vector<float> Out(static_cast<size_t>(G.numNodes()));
  for (auto _ : State) {
    kernels::degreeByBinningInto(G.adjacency(), Out);
    benchmark::DoNotOptimize(Out.data());
  }
}
BENCHMARK(BM_DegreeBinning);

namespace {

/// Skewed R-MAT big enough that the SpMM's dense operand (n x k floats)
/// dwarfs the L2 budget: the regime vertex reordering and column tiling
/// exist for. benchGraph() is too small to show layout effects.
const Graph &ablationGraph() {
  static Graph G = makeRmat(20000, 300000, 0.57, 0.19, 0.19, 99);
  return G;
}

const Graph &ablationGraphFor(int64_t PolicyIndex) {
  static std::map<int64_t, Graph> Cache;
  auto It = Cache.find(PolicyIndex);
  if (It == Cache.end())
    It = Cache
             .emplace(PolicyIndex,
                      reorderGraph(ablationGraph(),
                                   allReorderPolicies()[static_cast<size_t>(
                                       PolicyIndex)]))
             .first;
  return It->second;
}

} // namespace

// Reordering ablation: unweighted SpMM under {none, rcm, degree} vertex
// orderings x {untiled, L2-sized column tiles}. Run with
//   --benchmark_filter=ReorderAblation
// and read items_per_second: the none/untiled row is the baseline the
// reordered rows are compared against (docs/REORDERING.md records measured
// numbers).
static void BM_SpmmReorderAblation(benchmark::State &State) {
  const Graph &G = ablationGraphFor(State.range(0));
  bool Tiled = State.range(1) != 0;
  int64_t K = State.range(2);
  DenseMatrix H = randomDense(G.numNodes(), K, 9);
  DenseMatrix Out(G.numNodes(), K);
  int64_t Tile = Tiled ? HardwareModel::byName("cpu").spmmColumnTile(
                             K, G.stats().AvgRowSpan)
                       : 0;
  for (auto _ : State) {
    kernels::spmmTiledInto(G.adjacency(), H, Semiring::plusCopy(), Tile, Out);
    benchmark::DoNotOptimize(Out.data());
  }
  State.SetLabel(
      reorderPolicyName(allReorderPolicies()[static_cast<size_t>(
          State.range(0))]) +
      (Tiled ? "+tiled(" + std::to_string(Tile) + ")" : "/untiled") +
      " span=" + std::to_string(static_cast<int64_t>(G.stats().AvgRowSpan)));
  State.SetItemsProcessed(State.iterations() * G.numEdges() * K);
}
BENCHMARK(BM_SpmmReorderAblation)
    ->ArgNames({"policy", "tiled", "k"})
    ->Args({0, 0, 128})
    ->Args({0, 1, 128})
    ->Args({1, 0, 128})
    ->Args({1, 1, 128})
    ->Args({2, 0, 128})
    ->Args({2, 1, 128});

static void BM_EdgeSoftmax(benchmark::State &State) {
  const Graph &G = benchGraph();
  std::vector<float> Vals(static_cast<size_t>(G.numEdges()), 0.3f);
  std::vector<float> Out(static_cast<size_t>(G.numEdges()));
  for (auto _ : State) {
    kernels::edgeSoftmaxInto(G.adjacency(), Vals, Out);
    benchmark::DoNotOptimize(Out.data());
  }
}
BENCHMARK(BM_EdgeSoftmax);

namespace {

/// --json mode: a hand-rolled warmup + 11-repetition Timer loop over a
/// representative kernel subset, bypassing google-benchmark so the output
/// is a granii-bench-v1 report granii-bench-diff can consume. The subset
/// runs once per SIMD level the host supports (record ids carry a
/// "/<isa>" suffix), so one report both tracks regressions per level and
/// yields the SIMD-vs-scalar speedups docs/SIMD.md calibrates from. These
/// are measured wall-clock numbers: machine-dependent, so CI baselines
/// mark them gate=false (reported, never failing) — and levels the CI
/// host lacks are simply absent, which granii-bench-diff reports as
/// skipped rather than missing.
int runJsonMode(const std::string &Path) {
  using bench::BenchRecord;
  using bench::BenchReport;
  const Graph &G = benchGraph();
  BenchReport Report;
  /// median seconds per (kernel id, isa) for the speedup summary.
  std::map<std::string, std::map<std::string, double>> Medians;
  std::string Isa;

  auto Measure = [&](const std::string &Id, const std::string &GraphName,
                     int64_t KIn, int64_t KOut, const PrimitiveDesc &Desc,
                     auto &&Fn) {
    Fn(); // warm-up: faults pages, warms caches and the thread pool
    const int Reps = 11;
    std::vector<double> Samples;
    Samples.reserve(Reps);
    for (int I = 0; I < Reps; ++I) {
      Timer T;
      Fn();
      Samples.push_back(T.seconds());
    }
    BenchRecord R = BenchReport::makeRecord("micro/" + Id + "/" + Isa,
                                            GraphName, KIn, KOut, "none",
                                            Samples, Desc.bytes());
    Medians[Id][Isa] = R.MedianSeconds;
    Report.add(std::move(R));
  };

  /// Measure, then stamp the record with the sparse format it ran under so
  /// granii-bench-diff can skip it against head builds lacking the format.
  auto MeasureFormat = [&](const std::string &Id, const std::string &GraphName,
                           int64_t KIn, int64_t KOut,
                           const PrimitiveDesc &Desc,
                           const std::string &Format, auto &&Fn) {
    Fn();
    const int Reps = 11;
    std::vector<double> Samples;
    Samples.reserve(Reps);
    for (int I = 0; I < Reps; ++I) {
      Timer T;
      Fn();
      Samples.push_back(T.seconds());
    }
    BenchRecord R = BenchReport::makeRecord("micro/" + Id + "/" + Isa,
                                            GraphName, KIn, KOut, "none",
                                            Samples, Desc.bytes());
    R.Format = Format;
    Medians[Id][Isa] = R.MedianSeconds;
    Report.add(std::move(R));
  };

  auto MeasureAll = [&] {
    {
      const int64_t N = 1024, K = 64;
      DenseMatrix A = randomDense(N, K, 1), B = randomDense(K, K, 2);
      DenseMatrix C(N, K);
      Measure("gemm/1024x64", "-", K, K, {PrimitiveKind::Gemm, N, K, K, 0},
              [&] { kernels::gemmInto(A, B, C); });
    }
    {
      const int64_t K = 64;
      DenseMatrix H = randomDense(G.numNodes(), K, 3);
      DenseMatrix Out(G.numNodes(), K);
      Measure("spmm_u/64", G.name(), K, K,
              {PrimitiveKind::SpMMUnweighted, G.numNodes(), K, 0,
               G.numEdges()},
              [&] {
                kernels::spmmInto(G.adjacency(), H, Semiring::plusCopy(),
                                  Out);
              });
    }
    {
      const int64_t K = 64;
      CsrMatrix A = G.adjacency();
      std::vector<float> Vals(static_cast<size_t>(A.nnz()), 0.5f);
      A.setValues(std::move(Vals));
      DenseMatrix H = randomDense(G.numNodes(), K, 4);
      DenseMatrix Out(G.numNodes(), K);
      Measure("spmm_w/64", G.name(), K, K,
              {PrimitiveKind::SpMMWeighted, G.numNodes(), K, 0,
               G.numEdges()},
              [&] { kernels::spmmInto(A, H, Semiring::plusTimes(), Out); });
    }
    {
      const int64_t K = 32;
      DenseMatrix U = randomDense(G.numNodes(), K, 5);
      std::vector<float> Out(static_cast<size_t>(G.numEdges()));
      Measure("sddmm_dot/32", G.name(), K, K,
              {PrimitiveKind::SddmmDot, G.numNodes(), 0, K, G.numEdges()},
              [&] {
                kernels::sddmmInto(G.adjacency(), U, U,
                                   Semiring::plusTimes(), Out);
              });
    }
    {
      const int64_t K = 128;
      DenseMatrix H = randomDense(4096, K, 6);
      std::vector<float> D(4096, 1.1f);
      DenseMatrix Out(4096, K);
      Measure("row_broadcast/128", "-", K, K,
              {PrimitiveKind::RowBroadcast, 4096, K, 0, 0},
              [&] { kernels::rowBroadcastMulInto(D, H, Out); });
    }
    {
      std::vector<float> Vals(static_cast<size_t>(G.numEdges()), 0.3f);
      std::vector<float> Out(static_cast<size_t>(G.numEdges()));
      Measure("edge_softmax", G.name(), 0, 0,
              {PrimitiveKind::EdgeSoftmax, G.numNodes(), 0, 0,
               G.numEdges()},
              [&] { kernels::edgeSoftmaxInto(G.adjacency(), Vals, Out); });
    }
    // Per-format SpMM/SDDMM: the same workload under each non-CSR storage
    // layout (the CSR rows above are the reference). Conversion happens
    // outside the timed region, like the executor's one-time format setup.
    {
      const int64_t K = 64;
      const CsrMatrix &A = G.adjacency();
      std::vector<float> Vals(static_cast<size_t>(A.nnz()), 0.5f);
      DenseMatrix H = randomDense(G.numNodes(), K, 4);
      DenseMatrix Out(G.numNodes(), K);
      std::vector<float> EdgeOut(static_cast<size_t>(A.nnz()));
      EllMatrix Ell = EllMatrix::fromCsr(A);
      SellMatrix Sell = SellMatrix::fromCsr(A);
      HybMatrix Hyb = HybMatrix::fromCsr(A);
      PrimitiveDesc SpmmDesc{PrimitiveKind::SpMMWeighted, G.numNodes(), K, 0,
                             G.numEdges()};
      PrimitiveDesc SddmmDesc{PrimitiveKind::SddmmDot, G.numNodes(), 0, K,
                              G.numEdges()};
      for (SparseFormat Format : forwardSparseFormats()) {
        if (Format == SparseFormat::Csr)
          continue;
        const std::string Name = sparseFormatName(Format);
        MeasureFormat(
            "spmm_w/64/" + Name, G.name(), K, K, SpmmDesc, Name, [&] {
              switch (Format) {
              case SparseFormat::Ell:
                kernels::spmmEllInto(Ell, Vals, H, Semiring::plusTimes(),
                                     Out);
                break;
              case SparseFormat::Sell:
                kernels::spmmSellInto(Sell, Vals, H, Semiring::plusTimes(),
                                      Out);
                break;
              default:
                kernels::spmmHybInto(Hyb, Vals, H, Semiring::plusTimes(),
                                     Out);
                break;
              }
            });
        MeasureFormat(
            "sddmm_dot/64/" + Name, G.name(), K, K, SddmmDesc, Name, [&] {
              switch (Format) {
              case SparseFormat::Ell:
                kernels::sddmmEllInto(Ell, H, H, Semiring::plusTimes(),
                                      EdgeOut);
                break;
              case SparseFormat::Sell:
                kernels::sddmmSellInto(Sell, H, H, Semiring::plusTimes(),
                                       EdgeOut);
                break;
              default:
                kernels::sddmmHybInto(Hyb, H, H, Semiring::plusTimes(),
                                      EdgeOut);
                break;
              }
            });
      }
    }
  };

  // Sweep every SIMD level the host supports, scalar first, then restore
  // the level the process started with so a trailing google-benchmark run
  // (or the caller's environment override) is unaffected.
  kernels::IsaLevel Entry = kernels::activeIsaLevel();
  for (kernels::IsaLevel Level : kernels::supportedIsaLevels()) {
    kernels::setIsaLevel(Level);
    Isa = kernels::isaLevelName(Level);
    std::fprintf(stderr, "[micro_kernels] measuring isa level: %s\n",
                 Isa.c_str());
    MeasureAll();
  }
  kernels::setIsaLevel(Entry);

  // Speedup summary over scalar: the calibration input for the
  // DeviceParams::cpu() throughput scales (docs/SIMD.md) and the
  // acceptance view for the SIMD microkernels.
  for (const auto &[Id, PerIsa] : Medians) {
    auto Scalar = PerIsa.find("scalar");
    if (Scalar == PerIsa.end() || Scalar->second <= 0.0)
      continue;
    std::string Line = "[micro_kernels] " + Id + ":";
    for (const auto &[Name, Median] : PerIsa) {
      if (Name == "scalar" || Median <= 0.0)
        continue;
      char Buffer[64];
      std::snprintf(Buffer, sizeof(Buffer), " %s %.2fx", Name.c_str(),
                    Scalar->second / Median);
      Line += Buffer;
    }
    std::fprintf(stderr, "%s\n", Line.c_str());
  }

  std::string WriteError;
  if (!Report.write(Path, &WriteError)) {
    std::fprintf(stderr, "error: %s\n", WriteError.c_str());
    return 1;
  }
  std::fprintf(stderr, "[micro_kernels] wrote machine-readable report to "
               "%s\n",
               Path.c_str());
  return 0;
}

} // namespace

// Custom main instead of BENCHMARK_MAIN(): consume --threads=N (or
// "--threads N") before google-benchmark sees the argument list, so the
// kernel pool size can be swept, e.g. for the 1-vs-8-thread speedup runs.
int main(int argc, char **argv) {
  auto SetThreads = [](const char *Text) {
    std::string Warning;
    int Threads = parseThreadCount(Text, /*Fallback=*/0, &Warning);
    if (!Warning.empty())
      std::fprintf(stderr, "%s\n",
                   Diag{DiagSeverity::Warning, "bench", "--threads", Warning,
                        "pass a positive integer thread count"}
                       .toString()
                       .c_str());
    if (Threads > 0)
      ThreadPool::get().setNumThreads(Threads);
  };
  int Kept = 1;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strncmp(Arg, "--threads=", 10) == 0) {
      SetThreads(Arg + 10);
      continue;
    }
    if (std::strcmp(Arg, "--threads") == 0 && I + 1 < argc) {
      SetThreads(argv[++I]);
      continue;
    }
    argv[Kept++] = argv[I];
  }
  argc = Kept;
  std::fprintf(stderr, "[micro_kernels] threads: %d\n",
               ThreadPool::get().numThreads());
  std::string JsonPath = bench::consumeValueFlag(argc, argv, "json");
  if (!JsonPath.empty())
    return runJsonMode(JsonPath);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
