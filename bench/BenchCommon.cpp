//===- BenchCommon.cpp - Shared experiment harness infrastructure -----------===//

#include "BenchCommon.h"

#include "graph/Generators.h"
#include "kernels/Dispatch.h"
#include "support/Json.h"
#include "support/Stats.h"
#include "support/Str.h"
#include "support/ThreadPool.h"
#include "tensor/SparseFormat.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

using namespace granii;
using namespace granii::bench;

BenchContext &BenchContext::get() {
  static BenchContext Instance;
  return Instance;
}

BenchContext::BenchContext()
    : Platforms(HardwareModel::paperPlatforms()),
      Codes(evaluationGraphCodes()) {}

HardwareModel BenchContext::platform(const std::string &Name) const {
  return HardwareModel::byName(Name);
}

void BenchContext::setThreads(int NumThreads) {
  ThreadPool::get().setNumThreads(NumThreads);
}

const CostModel &BenchContext::costFor(const std::string &Hw) {
  HardwareModel Model = platform(Hw);
  // Caches live under GRANII_CACHE_DIR (default ./.granii-cache), not the
  // working directory, so repeated runs never litter the source tree.
  std::string Cache =
      costModelCacheDir() + "/granii_costmodel_" + Hw + ".cache";
  // Measured profiles change with the thread count and with the SIMD
  // dispatch level; key the cache (and the in-memory model) on both so a
  // GRANII_ISA override never reuses a profile measured at another level.
  if (Model.kind() == PlatformKind::Measured)
    Cache = costModelCacheDir() + "/granii_costmodel_" + Hw + "_t" +
            std::to_string(ThreadPool::get().numThreads()) + "_" +
            Model.params().Isa + ".cache";
  auto It = CostModels.find(Cache);
  if (It != CostModels.end())
    return *It->second;
  if (Model.kind() == PlatformKind::Measured &&
      !std::ifstream(Cache).good())
    std::fprintf(stderr,
                 "[bench] training %s cost models (cached in %s; the first "
                 "run profiles kernels and takes a few minutes)...\n",
                 Hw.c_str(), Cache.c_str());
  auto Trained = std::make_unique<LearnedCostModel>(
      loadOrTrainCostModel(Cache, Model, makeTrainingSuite()));
  It = CostModels.emplace(Cache, std::move(Trained)).first;
  return *It->second;
}

const std::vector<Graph> &BenchContext::evalGraphs() {
  if (!GraphsBuilt) {
    Graphs = makeEvaluationSuite();
    GraphsBuilt = true;
  }
  return Graphs;
}

Optimizer &BenchContext::optimizer(ModelKind Kind, const std::string &Hw,
                                   int Hops) {
  std::string Key = modelName(Kind) + "/" + Hw + "/" + std::to_string(Hops);
  auto It = Optimizers.find(Key);
  if (It == Optimizers.end()) {
    OptimizerOptions Opts;
    Opts.Hw = platform(Hw);
    Opts.Iterations = iterations();
    auto Opt = std::make_unique<Optimizer>(makeModel(Kind, Hops), Opts,
                                           &costFor(Hw));
    It = Optimizers.emplace(Key, std::move(Opt)).first;
  }
  return *It->second;
}

std::vector<std::pair<int64_t, int64_t>>
granii::bench::embeddingCombos(ModelKind Kind) {
  if (Kind == ModelKind::GAT)
    return {{32, 64}, {32, 128}, {64, 128}};
  return {{32, 32}, {32, 128}, {128, 32}, {128, 128}};
}

CellResult granii::bench::runCell(BenchContext &Ctx, BaselineSystem Sys,
                                  ModelKind Kind, const std::string &Hw,
                                  const Graph &G, int64_t KIn, int64_t KOut,
                                  bool Training, ReorderPolicy Reorder) {
  GnnModel Model = makeModel(Kind);
  Executor Exec(Ctx.platform(Hw));
  LayerParams Params = makeLayerParams(Model, G, KIn, KOut, /*Seed=*/5);
  const int Iters = Ctx.iterations();

  auto TotalOf = [&](const CompositionPlan &Plan, ReorderPolicy Policy) {
    if (Policy == ReorderPolicy::None) {
      ExecResult R =
          Training ? Exec.runTraining(Plan, Params.inputs(), Params.Stats)
                   : Exec.run(Plan, Params.inputs(), Params.Stats);
      return R.totalSeconds(Iters, Training);
    }
    // Workspace path: warm up once (buffer planning + permutation build are
    // not steady-state costs), then charge the second run, whose
    // SetupSeconds still carry the one-time reordering cost for honest
    // amortized accounting.
    PlanWorkspace Ws;
    ExecResult R;
    for (int Pass = 0; Pass < 2; ++Pass) {
      if (Training)
        Exec.runTraining(Plan, Params.inputs(), Params.Stats, Ws, R, Policy);
      else
        Exec.run(Plan, Params.inputs(), Params.Stats, Ws, R, Policy);
    }
    return R.totalSeconds(Iters, Training);
  };

  CellResult Cell;
  CompositionPlan Base = baselinePlan(Sys, Model, KIn, KOut);
  // The baseline system does not reorder; the policy applies to GRANII only.
  Cell.BaselineSeconds = TotalOf(Base, ReorderPolicy::None);

  Optimizer &Opt = Ctx.optimizer(Kind, Hw);
  Cell.Sel = Opt.select(G, KIn, KOut);
  Cell.PlanIndex = Cell.Sel.PlanIndex;
  Cell.GraniiSeconds = TotalOf(Opt.promoted()[Cell.Sel.PlanIndex], Reorder) +
                       Cell.Sel.FeaturizeSeconds + Cell.Sel.SelectSeconds;
  Cell.Speedup = Cell.BaselineSeconds / Cell.GraniiSeconds;

  DimBinding Binding;
  Binding.N = Params.AdjSelf.rows();
  Binding.E = Params.AdjSelf.nnz();
  Binding.KIn = KIn;
  Binding.KOut = KOut;
  for (const PrimitiveDesc &D :
       Opt.promoted()[Cell.PlanIndex].primitiveDescs(Binding))
    Cell.GraniiBytes += D.bytes();
  return Cell;
}

ReorderPolicy granii::bench::consumeReorderFlag(int &argc, char **argv) {
  ReorderPolicy Policy = ReorderPolicy::None;
  int Kept = 1;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    std::string Name;
    if (Arg.rfind("--reorder=", 0) == 0) {
      Name = Arg.substr(10);
    } else if (Arg == "--reorder" && I + 1 < argc) {
      Name = argv[++I];
    } else {
      argv[Kept++] = argv[I];
      continue;
    }
    std::optional<ReorderPolicy> Parsed = parseReorderPolicy(Name);
    if (!Parsed) {
      std::fprintf(stderr,
                   "error: unknown reorder policy '%s' (try none, rcm, "
                   "degree)\n",
                   Name.c_str());
      std::exit(2);
    }
    Policy = *Parsed;
  }
  argc = Kept;
  return Policy;
}

double granii::bench::geomeanSpeedup(const std::vector<CellResult> &Cells) {
  std::vector<double> Speedups;
  Speedups.reserve(Cells.size());
  for (const CellResult &Cell : Cells)
    Speedups.push_back(Cell.Speedup);
  return geomeanOf(Speedups);
}

std::string granii::bench::formatSpeedup(double Value) {
  return formatDouble(Value, 2) + "x";
}

std::string granii::bench::consumeValueFlag(int &argc, char **argv,
                                            const std::string &Name) {
  std::string Value;
  std::string Eq = "--" + Name + "=";
  std::string Bare = "--" + Name;
  int Kept = 1;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind(Eq, 0) == 0) {
      Value = Arg.substr(Eq.size());
      continue;
    }
    if (Arg == Bare && I + 1 < argc) {
      Value = argv[++I];
      continue;
    }
    argv[Kept++] = argv[I];
  }
  argc = Kept;
  return Value;
}

bool granii::bench::consumeBoolFlag(int &argc, char **argv,
                                    const std::string &Name) {
  bool Present = false;
  std::string Bare = "--" + Name;
  int Kept = 1;
  for (int I = 1; I < argc; ++I) {
    if (Bare == argv[I]) {
      Present = true;
      continue;
    }
    argv[Kept++] = argv[I];
  }
  argc = Kept;
  return Present;
}

BenchRecord BenchReport::makeRecord(std::string Id, std::string Graph,
                                    int64_t KIn, int64_t KOut,
                                    std::string Reorder,
                                    const std::vector<double> &SecondsSamples,
                                    double Bytes) {
  BenchRecord R;
  R.Id = std::move(Id);
  R.Graph = std::move(Graph);
  R.KIn = KIn;
  R.KOut = KOut;
  R.Threads = ThreadPool::get().numThreads();
  R.Isa = kernels::isaLevelName(kernels::activeIsaLevel());
  R.Reorder = std::move(Reorder);
  R.Repetitions = static_cast<int>(SecondsSamples.size());
  R.MedianSeconds = medianOf(SecondsSamples);
  R.P10Seconds = quantileOf(SecondsSamples, 0.1);
  R.P90Seconds = quantileOf(SecondsSamples, 0.9);
  R.Bytes = Bytes;
  return R;
}

namespace {

std::string jsonNumber(double Value) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.9g", Value);
  return Buffer;
}

} // namespace

std::string BenchReport::toJson() const {
  std::string Json = "{\n";
  Json += "  \"schema\": \"granii-bench-v1\",\n";
  Json += "  \"git_sha\": \"" + jsonEscape(benchGitSha()) + "\",\n";
  Json += "  \"threads\": " +
          std::to_string(ThreadPool::get().numThreads()) + ",\n";
  Json += "  \"isa_levels\": [";
  std::vector<kernels::IsaLevel> Levels = kernels::supportedIsaLevels();
  for (size_t I = 0; I < Levels.size(); ++I)
    Json += std::string(I == 0 ? "" : ", ") + "\"" +
            kernels::isaLevelName(Levels[I]) + "\"";
  Json += "],\n";
  Json += "  \"formats\": [";
  const std::vector<SparseFormat> &Formats = forwardSparseFormats();
  for (size_t I = 0; I < Formats.size(); ++I)
    Json += std::string(I == 0 ? "" : ", ") + "\"" +
            sparseFormatName(Formats[I]) + "\"";
  Json += "],\n";
  Json += "  \"benchmarks\": [";
  for (size_t I = 0; I < Records.size(); ++I) {
    const BenchRecord &R = Records[I];
    Json += I == 0 ? "\n" : ",\n";
    Json += "    {\"id\": \"" + jsonEscape(R.Id) + "\", ";
    Json += "\"graph\": \"" + jsonEscape(R.Graph) + "\", ";
    Json += "\"kin\": " + std::to_string(R.KIn) + ", ";
    Json += "\"kout\": " + std::to_string(R.KOut) + ", ";
    Json += "\"threads\": " + std::to_string(R.Threads) + ", ";
    if (!R.Isa.empty())
      Json += "\"isa\": \"" + jsonEscape(R.Isa) + "\", ";
    if (!R.Format.empty())
      Json += "\"format\": \"" + jsonEscape(R.Format) + "\", ";
    Json += "\"reorder\": \"" + jsonEscape(R.Reorder) + "\", ";
    Json += "\"repetitions\": " + std::to_string(R.Repetitions) + ", ";
    Json += "\"median_seconds\": " + jsonNumber(R.MedianSeconds) + ", ";
    Json += "\"p10_seconds\": " + jsonNumber(R.P10Seconds) + ", ";
    Json += "\"p90_seconds\": " + jsonNumber(R.P90Seconds) + ", ";
    Json += "\"bytes\": " + jsonNumber(R.Bytes) + "}";
  }
  Json += Records.empty() ? "]\n" : "\n  ]\n";
  Json += "}\n";
  return Json;
}

bool BenchReport::write(const std::string &Path,
                        std::string *ErrorOut) const {
  std::ofstream Out(Path);
  if (!Out) {
    if (ErrorOut)
      *ErrorOut = "cannot open '" + Path + "' for writing";
    return false;
  }
  Out << toJson();
  if (!Out) {
    if (ErrorOut)
      *ErrorOut = "short write to '" + Path + "'";
    return false;
  }
  return true;
}

std::string granii::bench::benchGitSha() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at startup
  if (const char *Sha = std::getenv("GRANII_GIT_SHA"))
    if (*Sha)
      return Sha;
#if !defined(_WIN32)
  if (FILE *Pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char Buffer[128] = {0};
    size_t Read = std::fread(Buffer, 1, sizeof(Buffer) - 1, Pipe);
    int Status = ::pclose(Pipe);
    if (Status == 0 && Read >= 40)
      return std::string(Buffer, 40);
  }
#endif
  return "unknown";
}
