//===- serve_throughput.cpp - granii-serve request throughput ---------------===//
//
// Measures the serving daemon end to end: an in-process Server on a real
// Unix socket, N concurrent clients each issuing a stream of run requests
// against a warm session. Reports requests/second for the concurrent sweep
// plus the warm single-client round-trip latency (socket + framing + one
// executed pass), i.e. what the paper's amortization argument buys once the
// offline stage and the session setup are off the request path.
//
// Flags: --clients N (default 8), --requests N per client (default 32),
// --json=<file> for a granii-bench-v1 report, --smoke for the small CI
// subset (fewer requests, small graph), --threads N to pin the kernel pool.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "serve/Client.h"
#include "serve/Server.h"
#include "support/Str.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace granii;
using namespace granii::bench;
using namespace granii::serve;

namespace {

const char *GcnModel = "model GCN {\n"
                       "  input graph A;\n"
                       "  input features H;\n"
                       "  param weight W;\n"
                       "  d = inv_sqrt_degree(A);\n"
                       "  h = row_scale(d, H);\n"
                       "  h = aggregate(A, h);\n"
                       "  h = matmul(h, W);\n"
                       "  h = row_scale(d, h);\n"
                       "  output relu(h);\n"
                       "}\n";

struct SweepResult {
  double WallSeconds = 0.0;
  uint64_t Requests = 0;
  bool Ok = true;
};

/// One concurrent batch: \p Clients connections, \p PerClient requests
/// each, all against the same warm session.
SweepResult runBatch(const std::string &Socket, const JobRequest &Req,
                     int Clients, int PerClient) {
  SweepResult Result;
  std::vector<std::thread> Threads;
  std::vector<bool> ClientOk(Clients, false);
  Timer Wall;
  for (int I = 0; I < Clients; ++I)
    Threads.emplace_back([&, I] {
      Client C;
      std::string Err;
      if (!C.connect(Socket, &Err)) {
        std::fprintf(stderr, "client %d: %s\n", I, Err.c_str());
        return;
      }
      for (int R = 0; R < PerClient; ++R) {
        RunResponse Resp;
        if (!C.run(Req, Resp, &Err) || !Resp.Status.Ok) {
          std::fprintf(stderr, "client %d request %d failed: %s\n", I, R,
                       (Err.empty() ? Resp.Status.Error : Err).c_str());
          return;
        }
      }
      ClientOk[I] = true;
    });
  for (std::thread &T : Threads)
    T.join();
  Result.WallSeconds = Wall.seconds();
  Result.Requests = static_cast<uint64_t>(Clients) * PerClient;
  for (bool Ok : ClientOk)
    Result.Ok = Result.Ok && Ok;
  return Result;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = consumeValueFlag(argc, argv, "json");
  bool Smoke = consumeBoolFlag(argc, argv, "smoke");
  std::string ThreadsFlag = consumeValueFlag(argc, argv, "threads");
  std::string ClientsFlag = consumeValueFlag(argc, argv, "clients");
  std::string RequestsFlag = consumeValueFlag(argc, argv, "requests");
  auto ParseCount = [](const std::string &Flag, const char *Name,
                       int Default) {
    if (Flag.empty())
      return Default;
    int64_t Value = 0;
    if (!granii::parseInt64(Flag, Value) || Value < 1 || Value > 1 << 20) {
      std::fprintf(stderr, "invalid --%s value: %s\n", Name, Flag.c_str());
      std::exit(2);
    }
    return static_cast<int>(Value);
  };
  if (!ThreadsFlag.empty())
    BenchContext::get().setThreads(ParseCount(ThreadsFlag, "threads", 1));

  int Clients = ParseCount(ClientsFlag, "clients", 8);
  int PerClient = ParseCount(RequestsFlag, "requests", 32);
  if (Smoke) {
    Clients = 8;
    PerClient = 4;
  }
  const int Reps = Smoke ? 3 : 5;

  JobRequest Req;
  Req.ModelText = GcnModel;
  const std::string GraphName = Smoke ? "mycielskian" : "coauthors";
  Req.GraphSpec = "synth:" + GraphName;
  Req.KIn = Smoke ? 8 : 32;
  Req.KOut = Smoke ? 12 : 32;
  Req.WantOutput = false; // measure serving, not output transport

  ServerOptions Options;
  Options.SocketPath =
      "/tmp/granii-bench-" + std::to_string(::getpid()) + ".sock";
  Options.ConnWorkers = Clients;
  Options.Engine.DiskSpill = false; // hermetic: compile once, in memory
  Server Srv(Options);
  std::string Err;
  if (!Srv.start(&Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }

  std::printf("granii-serve throughput (GCN, %s, K=%lldx%lld, %d kernel "
              "thread(s))\n\n",
              Req.GraphSpec.c_str(), static_cast<long long>(Req.KIn),
              static_cast<long long>(Req.KOut),
              static_cast<int>(ThreadPool::get().numThreads()));

  // Warm up: first request pays compile + session setup; everything the
  // sweep measures is the amortized steady state.
  {
    Client C;
    RunResponse Resp;
    if (!C.connect(Options.SocketPath, &Err) || !C.run(Req, Resp, &Err) ||
        !Resp.Status.Ok) {
      std::fprintf(stderr, "warmup failed: %s%s\n", Err.c_str(),
                   Resp.Status.Error.c_str());
      Srv.requestStop();
      Srv.wait();
      return 1;
    }
  }

  BenchReport Report;
  int ExitCode = 0;

  // Warm single-client latency: one connection, sequential round trips.
  {
    Client C;
    if (!C.connect(Options.SocketPath, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      Srv.requestStop();
      Srv.wait();
      return 1;
    }
    const int LatencyCalls = Smoke ? 16 : 64;
    std::vector<double> Samples;
    for (int Rep = 0; Rep < Reps; ++Rep) {
      Timer T;
      for (int I = 0; I < LatencyCalls; ++I) {
        RunResponse Resp;
        if (!C.run(Req, Resp, &Err) || !Resp.Status.Ok ||
            Resp.SteadyAllocations != 0) {
          std::fprintf(stderr, "latency call failed (allocs=%llu): %s%s\n",
                       static_cast<unsigned long long>(
                           Resp.SteadyAllocations),
                       Err.c_str(), Resp.Status.Error.c_str());
          ExitCode = 1;
          break;
        }
      }
      Samples.push_back(T.seconds() / LatencyCalls);
    }
    std::sort(Samples.begin(), Samples.end());
    std::printf("warm latency: %.3f ms/request (1 client, median of %d "
                "runs of %d calls)\n",
                Samples[Samples.size() / 2] * 1e3, Reps, LatencyCalls);
    Report.add(BenchReport::makeRecord("serve/latency/warm", GraphName,
                                       Req.KIn, Req.KOut, "none", Samples,
                                       0.0));
  }

  // Concurrent throughput sweep.
  {
    std::vector<double> Samples;
    double BestReqPerSec = 0.0;
    for (int Rep = 0; Rep < Reps; ++Rep) {
      SweepResult R = runBatch(Options.SocketPath, Req, Clients, PerClient);
      if (!R.Ok) {
        ExitCode = 1;
        break;
      }
      Samples.push_back(R.WallSeconds / static_cast<double>(R.Requests));
      BestReqPerSec = std::max(
          BestReqPerSec, static_cast<double>(R.Requests) / R.WallSeconds);
    }
    if (!Samples.empty()) {
      std::sort(Samples.begin(), Samples.end());
      std::printf("throughput: %.0f req/sec best of %d (%d clients x %d "
                  "requests, %.3f ms/request median)\n",
                  BestReqPerSec, Reps, Clients, PerClient,
                  Samples[Samples.size() / 2] * 1e3);
      Report.add(BenchReport::makeRecord(
          "serve/throughput/c" + std::to_string(Clients), GraphName,
          Req.KIn, Req.KOut, "none", Samples, 0.0));
    }
  }

  // Protocol-level stats, then drain through the shutdown verb so the
  // graceful path is exercised on every bench run.
  {
    Client C;
    StatsResponse Stats;
    ShutdownResponse Ack;
    if (C.connect(Options.SocketPath, &Err) && C.stats(Stats, &Err) &&
        Stats.Status.Ok) {
      std::printf("\ndaemon: %llu request(s), %llu session hit(s), "
                  "%llu plan-cache hit(s), %llu error(s)\n",
                  static_cast<unsigned long long>(Stats.RequestsServed),
                  static_cast<unsigned long long>(Stats.SessionHits),
                  static_cast<unsigned long long>(Stats.PlanCacheHits),
                  static_cast<unsigned long long>(Stats.ErrorResponses));
      if (Stats.ErrorResponses != 0)
        ExitCode = 1;
    }
    if (!C.shutdown(Ack, &Err) || !Ack.Status.Ok) {
      std::fprintf(stderr, "shutdown failed: %s\n", Err.c_str());
      ExitCode = 1;
    }
  }
  Srv.wait();

  if (!JsonPath.empty() && !Report.write(JsonPath, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  return ExitCode;
}
