//===- ablation_costmodel.cpp - Ablation: learned vs simpler cost models ----===//
//
// DESIGN.md ablation: replace the learned GBT cost models with (a) the
// analytic roofline estimate and (b) a pure FLOP count, and measure how
// much of the per-setting Optimal each selector achieves (inference, all
// platforms x graphs x embedding combos, GCN + GAT + SGC).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Stats.h"
#include "support/Str.h"

#include <algorithm>
#include <cstdio>

using namespace granii;
using namespace granii::bench;

namespace {

/// Cost model that only counts floating-point operations (graph-oblivious
/// apart from the edge count).
class FlopsCostModel : public CostModel {
public:
  double primitiveSeconds(const PrimitiveDesc &Desc,
                          const GraphStats &) const override {
    return Desc.flops() + 1.0;
  }
  std::string name() const override { return "flops"; }
};

} // namespace

int main() {
  BenchContext &Ctx = BenchContext::get();
  const int Iters = Ctx.iterations();
  FlopsCostModel Flops;

  std::vector<std::string> Header = {"Model", "Learned", "Analytic",
                                     "FlopsOnly"};
  std::vector<std::vector<std::string>> Table;

  for (ModelKind Kind : {ModelKind::GCN, ModelKind::SGC, ModelKind::GAT}) {
    GnnModel Model = makeModel(Kind);
    // Fraction-of-optimal accumulators (optimal time / chosen time).
    std::vector<double> LearnedFrac, AnalyticFrac, FlopsFrac;

    for (const char *Hw : {"h100", "a100", "cpu"}) {
      HardwareModel Platform = Ctx.platform(Hw);
      Executor Exec(Platform);
      Optimizer &Opt = Ctx.optimizer(Kind, Hw);
      AnalyticCostModel Analytic(Platform);
      const CostModel &Learned = Ctx.costFor(Hw);

      for (const Graph &G : Ctx.evalGraphs()) {
        Graph WithSelf = G.withSelfLoops();
        DimBinding B;
        B.N = WithSelf.numNodes();
        B.E = WithSelf.numEdges();
        for (auto [KIn, KOut] : embeddingCombos(Kind)) {
          B.KIn = KIn;
          B.KOut = KOut;
          LayerParams Params = makeLayerParams(Model, G, KIn, KOut, 5);

          std::vector<double> Actual;
          for (const CompositionPlan &Plan : Opt.promoted())
            Actual.push_back(Exec.run(Plan, Params.inputs(), Params.Stats)
                                 .totalSeconds(Iters, false));
          double Best = *std::min_element(Actual.begin(), Actual.end());

          auto ChoiceOf = [&](const CostModel &CM) {
            size_t BestIdx = 0;
            double BestCost = 0.0;
            for (size_t P = 0; P < Opt.promoted().size(); ++P) {
              double C = CM.planSeconds(Opt.promoted()[P], B,
                                        WithSelf.stats(), Iters);
              if (P == 0 || C < BestCost) {
                BestIdx = P;
                BestCost = C;
              }
            }
            return BestIdx;
          };
          LearnedFrac.push_back(Best / Actual[ChoiceOf(Learned)]);
          AnalyticFrac.push_back(Best / Actual[ChoiceOf(Analytic)]);
          FlopsFrac.push_back(Best / Actual[ChoiceOf(Flops)]);
        }
      }
    }
    Table.push_back({modelName(Kind),
                     formatDouble(100.0 * geomeanOf(LearnedFrac), 1) + "%",
                     formatDouble(100.0 * geomeanOf(AnalyticFrac), 1) + "%",
                     formatDouble(100.0 * geomeanOf(FlopsFrac), 1) + "%"});
  }

  std::printf("Ablation: %% of per-setting Optimal achieved by each cost "
              "model family (geomean; higher is better)\n\n%s\n",
              renderTable(Header, Table).c_str());
  std::printf("Learned models capture hardware- and irregularity-dependent "
              "effects a FLOP count cannot (paper §IV-E's argument for "
              "non-linear data-driven models).\n");
  return 0;
}
