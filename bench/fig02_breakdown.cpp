//===- fig02_breakdown.cpp - Paper Fig. 2: sparse/dense runtime split -------===//
//
// Reproduces Figure 2: the percentage of GCN runtime spent in sparse vs
// dense matrix primitives, across graphs, (in, out) embedding sizes, and
// hardware — the evidence that no single factor predicts where time goes.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Str.h"

#include <cstdio>

using namespace granii;
using namespace granii::bench;

int main() {
  BenchContext &Ctx = BenchContext::get();
  GnnModel Gcn = makeModel(ModelKind::GCN);

  std::vector<std::string> Header = {"HW", "Graph", "(Kin,Kout)", "sparse%",
                                     "dense%"};
  std::vector<std::vector<std::string>> Table;
  double MinSparse = 100.0, MaxSparse = 0.0;

  for (const char *Hw : {"cpu", "a100", "h100"}) {
    Executor Exec(Ctx.platform(Hw));
    for (size_t GI = 0; GI < Ctx.evalGraphs().size(); ++GI) {
      const Graph &G = Ctx.evalGraphs()[GI];
      for (auto [KIn, KOut] :
           {std::pair<int64_t, int64_t>{32, 128}, {128, 32}}) {
        LayerParams Params = makeLayerParams(Gcn, G, KIn, KOut, 5);
        CompositionPlan Plan =
            baselinePlan(BaselineSystem::DGL, Gcn, KIn, KOut);
        ExecResult R = Exec.run(Plan, Params.inputs(), Params.Stats);

        double Sparse = 0.0, Dense = 0.0;
        for (size_t I = 0; I < Plan.Steps.size(); ++I) {
          if (isSparsePrimitive(primitiveKindOf(Plan.Steps[I].Op)))
            Sparse += R.StepSeconds[I];
          else
            Dense += R.StepSeconds[I];
        }
        double Total = Sparse + Dense;
        double SparsePct = Total > 0 ? 100.0 * Sparse / Total : 0.0;
        MinSparse = std::min(MinSparse, SparsePct);
        MaxSparse = std::max(MaxSparse, SparsePct);
        Table.push_back({Hw, Ctx.evalCodes()[GI],
                         "(" + std::to_string(KIn) + "," +
                             std::to_string(KOut) + ")",
                         formatDouble(SparsePct, 1),
                         formatDouble(100.0 - SparsePct, 1)});
      }
    }
  }

  std::printf("Figure 2: %% of GCN runtime in sparse vs dense primitives "
              "(DGL default composition)\n\n%s\n",
              renderTable(Header, Table).c_str());
  std::printf("sparse share ranges from %.1f%% to %.1f%% depending on graph, "
              "configuration and hardware\n",
              MinSparse, MaxSparse);
  std::printf("=> no single factor suffices; selection must inspect all of "
              "them (paper's motivation for learned cost models)\n");
  return 0;
}
