//===- enumeration_stats.cpp - Paper §VI-B composition counts ---------------===//
//
// Reports the per-model enumeration and offline-pruning statistics (the
// paper quotes "compositions through re-associations and offline pruning
// pairs" of 12/8 for GCN, 2/0 for GAT and 8/4 for GIN).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "assoc/Enumerate.h"
#include "assoc/Prune.h"
#include "support/Str.h"

#include <cstdio>

using namespace granii;
using namespace granii::bench;

int main() {
  std::vector<std::string> Header = {"Model",    "Enumerated", "Pruned",
                                     "Promoted", "Viable(>=)", "Viable(<)"};
  std::vector<std::vector<std::string>> Table;

  for (ModelKind Kind : allModels()) {
    GnnModel M = makeModel(Kind);
    PruneStats Stats;
    auto Promoted = pruneCompositions(enumerateCompositions(M.Root), &Stats);
    size_t Ge = 0, Lt = 0;
    for (const CompositionPlan &P : Promoted) {
      Ge += P.ViableGe;
      Lt += P.ViableLt;
    }
    Table.push_back({M.Name, std::to_string(Stats.Enumerated),
                     std::to_string(Stats.Pruned),
                     std::to_string(Stats.Promoted), std::to_string(Ge),
                     std::to_string(Lt)});
  }

  std::printf("Offline enumeration and pruning statistics (paper §VI-B)\n\n");
  std::printf("%s\n", renderTable(Header, Table).c_str());
  std::printf("Paper reference: GCN 12 enumerated / 8 pruned, GAT 2 / 0, "
              "GIN 8 / 4.\n");
  std::printf("Candidates viable in only one embedding-size scenario are "
              "dispatched by a pure size test at runtime; the rest go "
              "through the learned cost models.\n");
  return 0;
}
