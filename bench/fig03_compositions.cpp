//===- fig03_compositions.cpp - Paper Fig. 3: compositions + complexities ---===//
//
// Reproduces Figure 3: the two primitive compositions GRANII discovers for
// GCN (dynamic normalization vs precomputation) and GAT (reuse vs
// recomputation), with each primitive's asymptotic complexity.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "assoc/Enumerate.h"
#include "assoc/Prune.h"

#include <cstdio>

using namespace granii;
using namespace granii::bench;

namespace {

/// Symbolic per-operation complexity string, in the paper's N/E/K terms.
std::string complexityOf(const CompositionPlan &Plan, size_t StepIdx) {
  const PlanStep &Step = Plan.Steps[StepIdx];
  auto Cols = [&](int Id) {
    return Plan.Values[static_cast<size_t>(Id)].Shape.Cols.toString();
  };
  auto Rows = [&](int Id) {
    return Plan.Values[static_cast<size_t>(Id)].Shape.Rows.toString();
  };
  switch (Step.Op) {
  case StepOp::Gemm:
    return "O(" + Rows(Step.Operands[0]) + "*" + Cols(Step.Operands[0]) +
           "*" + Cols(Step.Operands[1]) + ")";
  case StepOp::SpmmWeighted:
    return "O(2E*" + Cols(Step.Operands[1]) + ")";
  case StepOp::SpmmUnweighted:
    return "O(E*" + Cols(Step.Operands[1]) + ")";
  case StepOp::SddmmScaleRow:
  case StepOp::SddmmScaleCol:
  case StepOp::SddmmScaleBoth:
    return "O(E)";
  case StepOp::RowBcast:
    return "O(N*" + Cols(Step.Operands[1]) + ")";
  case StepOp::ColBcast:
    return "O(N*" + Cols(Step.Operands[0]) + ")";
  case StepOp::AddDense:
  case StepOp::ScaleDense:
  case StepOp::Relu:
    return "O(N*" + Cols(Step.Operands[0]) + ")";
  case StepOp::DiagDiag:
  case StepOp::InvSqrtVec:
  case StepOp::InvVec:
  case StepOp::DegreeOffsets:
    return "O(N)";
  case StepOp::DegreeBinning:
    return "O(E) + atomics";
  case StepOp::AttnGemv:
    return "O(N*" + Cols(Step.Operands[0]) + ")";
  case StepOp::EdgeLogits:
  case StepOp::EdgeLeakyRelu:
  case StepOp::EdgeSoftmax:
    return "O(E)";
  }
  return "O(?)";
}

void printPlan(const char *Title, const CompositionPlan &Plan) {
  std::printf("  %s\n", Title);
  for (size_t I = 0; I < Plan.Steps.size(); ++I) {
    const PlanStep &Step = Plan.Steps[I];
    std::printf("    %-12s %-16s%s\n", stepOpName(Step.Op).c_str(),
                complexityOf(Plan, I).c_str(),
                Step.Setup ? "  [hoisted: graph-only]" : "");
  }
}

} // namespace

int main() {
  std::printf("Figure 3: primitive compositions and per-operation "
              "complexities (K1 = Kin, K2 = Kout)\n\n");

  GnnModel Gcn = makeModel(ModelKind::GCN);
  auto GcnPlans = pruneCompositions(enumerateCompositions(Gcn.Root));
  std::printf("GCN (paper Eq. 2 vs Eq. 3):\n");
  for (const CompositionPlan &Plan : GcnPlans) {
    if (!Plan.ViableLt)
      continue; // Show the aggregate-first ordering of each composition.
    printPlan(planUsesPrecompute(Plan)
                  ? "precomputation-based (favors sparser graphs)"
                  : "dynamic-normalization (favors denser graphs)",
              Plan);
  }

  GnnModel Gat = makeModel(ModelKind::GAT);
  auto GatPlans = pruneCompositions(enumerateCompositions(Gat.Root));
  std::printf("\nGAT (paper Eqs. 4-6):\n");
  for (const CompositionPlan &Plan : GatPlans)
    printPlan(planRecomputesTheta(Plan)
                  ? "recomputation-based (extra GEMM, narrower aggregation)"
                  : "reuse-based (shares the updated embeddings)",
              Plan);

  std::printf("\nGCN candidates promoted: %zu of %zu enumerated; GAT: %zu of "
              "%zu\n",
              GcnPlans.size(),
              enumerateCompositions(Gcn.Root).size(), GatPlans.size(),
              enumerateCompositions(Gat.Root).size());
  return 0;
}
