//===- ablation_pruning.cpp - Ablation: offline input-oblivious pruning -----===//
//
// DESIGN.md ablation: what does the offline pruning stage buy? It cannot
// change which composition ultimately wins (the pruned candidates are
// dominated), but it shrinks the set the online stage must evaluate with
// cost models — the paper's "low overhead decision making" challenge.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "graph/Generators.h"

#include "assoc/Enumerate.h"
#include "assoc/Prune.h"
#include "support/Str.h"
#include "support/Timer.h"

#include <cstdio>

using namespace granii;
using namespace granii::bench;

int main() {
  BenchContext &Ctx = BenchContext::get();
  const CostModel &Cost = Ctx.costFor("h100");
  Graph G = makeEvaluationGraph("reddit");
  Graph WithSelf = G.withSelfLoops();

  std::vector<std::string> Header = {"Model",          "Candidates(all)",
                                     "Candidates(pruned)", "OnlineCost(all)",
                                     "OnlineCost(pruned)", "SameWinner"};
  std::vector<std::vector<std::string>> Table;

  for (ModelKind Kind : allModels()) {
    GnnModel M = makeModel(Kind);
    std::vector<CompositionPlan> All = enumerateCompositions(M.Root);
    std::vector<CompositionPlan> Promoted = pruneCompositions(All);

    DimBinding B{WithSelf.numNodes(), 64, 128, WithSelf.numEdges()};
    auto PickBest = [&](const std::vector<CompositionPlan> &Plans,
                        double &EvalSeconds) {
      Timer T;
      std::string BestKey;
      double BestCost = 0.0;
      for (const CompositionPlan &Plan : Plans) {
        double C = Cost.planSeconds(Plan, B, WithSelf.stats(),
                                    Ctx.iterations());
        if (BestKey.empty() || C < BestCost) {
          BestKey = Plan.canonicalKey();
          BestCost = C;
        }
      }
      EvalSeconds = T.seconds();
      return BestKey;
    };

    double AllSeconds = 0.0, PrunedSeconds = 0.0;
    std::string AllWinner = PickBest(All, AllSeconds);
    std::string PrunedWinner = PickBest(Promoted, PrunedSeconds);

    Table.push_back({M.Name, std::to_string(All.size()),
                     std::to_string(Promoted.size()),
                     formatDouble(AllSeconds * 1e3, 2) + " ms",
                     formatDouble(PrunedSeconds * 1e3, 2) + " ms",
                     AllWinner == PrunedWinner ? "yes" : "NO"});
  }

  std::printf("Ablation: two-stage pruning (offline rules before online "
              "cost models), reddit stand-in, (64,128), H100 models\n\n%s\n",
              renderTable(Header, Table).c_str());
  std::printf("Pruning must never flip the winner (dominated candidates "
              "cannot be optimal); it exists to cut the online cost-model "
              "work, which the two OnlineCost columns quantify.\n");
  return 0;
}
