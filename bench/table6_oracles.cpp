//===- table6_oracles.cpp - Paper Table VI: GRANII vs single-factor oracles -===//
//
// Reproduces Table VI: geomean speedup over the framework defaults of (a)
// the per-setting Optimal composition, (b) GRANII's learned selection, and
// (c) oracles that fix the composition per value of a single factor —
// model configuration, hardware, input graph, or baseline system — chosen
// by majority over the remaining settings.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Stats.h"
#include "support/Str.h"

#include <cstdio>
#include <functional>
#include <map>

using namespace granii;
using namespace granii::bench;

namespace {

struct Setting {
  std::string Hw;
  size_t GraphIndex;
  int64_t KIn, KOut;
  std::vector<double> PlanSeconds;       // actual, per promoted plan
  size_t GraniiChoice = 0;
  double WiseSeconds = 0.0, DglSeconds = 0.0;

  std::string configKey() const {
    return std::to_string(KIn) + "," + std::to_string(KOut);
  }
};

/// Majority-vote winner: the plan that is per-setting optimal most often
/// within \p Group (sum of times breaks ties).
size_t majorityWinner(const std::vector<const Setting *> &Group) {
  std::map<size_t, int> Wins;
  std::map<size_t, double> Sums;
  for (const Setting *S : Group) {
    size_t Best = 0;
    for (size_t P = 1; P < S->PlanSeconds.size(); ++P)
      if (S->PlanSeconds[P] < S->PlanSeconds[Best])
        Best = P;
    ++Wins[Best];
    for (size_t P = 0; P < S->PlanSeconds.size(); ++P)
      Sums[P] += S->PlanSeconds[P];
  }
  size_t Winner = 0;
  int BestWins = -1;
  for (const auto &[Plan, Count] : Wins)
    if (Count > BestWins ||
        (Count == BestWins && Sums[Plan] < Sums[Winner])) {
      Winner = Plan;
      BestWins = Count;
    }
  return Winner;
}

/// Geomean speedup of a per-setting plan choice over both baselines.
double oracleSpeedup(const std::vector<Setting> &Settings,
                     const std::function<size_t(const Setting &)> &Choice) {
  std::vector<double> Speedups;
  for (const Setting &S : Settings) {
    double Chosen = S.PlanSeconds[Choice(S)];
    Speedups.push_back(S.WiseSeconds / Chosen);
    Speedups.push_back(S.DglSeconds / Chosen);
  }
  return geomeanOf(Speedups);
}

} // namespace

int main() {
  BenchContext &Ctx = BenchContext::get();
  const int Iters = Ctx.iterations();

  std::vector<std::string> Header = {"GNN",  "Optimal", "GRANII", "Config.",
                                     "HW",   "Graph",   "Sys."};
  std::vector<std::vector<std::string>> Table;

  for (ModelKind Kind : allModels()) {
    GnnModel Model = makeModel(Kind);
    std::vector<Setting> Settings;

    for (const char *Hw : {"h100", "a100", "cpu"}) {
      Executor Exec(Ctx.platform(Hw));
      Optimizer &Opt = Ctx.optimizer(Kind, Hw);
      for (size_t GI = 0; GI < Ctx.evalGraphs().size(); ++GI) {
        const Graph &G = Ctx.evalGraphs()[GI];
        for (auto [KIn, KOut] : embeddingCombos(Kind)) {
          Setting S;
          S.Hw = Hw;
          S.GraphIndex = GI;
          S.KIn = KIn;
          S.KOut = KOut;
          LayerParams Params = makeLayerParams(Model, G, KIn, KOut, 5);
          for (const CompositionPlan &Plan : Opt.promoted())
            S.PlanSeconds.push_back(
                Exec.run(Plan, Params.inputs(), Params.Stats)
                    .totalSeconds(Iters, false));
          S.GraniiChoice = Opt.select(G, KIn, KOut).PlanIndex;
          S.WiseSeconds =
              Exec.run(baselinePlan(BaselineSystem::WiseGraph, Model, KIn,
                                    KOut),
                       Params.inputs(), Params.Stats)
                  .totalSeconds(Iters, false);
          S.DglSeconds =
              Exec.run(baselinePlan(BaselineSystem::DGL, Model, KIn, KOut),
                       Params.inputs(), Params.Stats)
                  .totalSeconds(Iters, false);
          Settings.push_back(std::move(S));
        }
      }
    }

    // Group settings by factor value and take the majority winner.
    auto GroupedWinner = [&](const std::function<std::string(const Setting &)>
                                 &KeyOf) {
      std::map<std::string, std::vector<const Setting *>> Groups;
      for (const Setting &S : Settings)
        Groups[KeyOf(S)].push_back(&S);
      std::map<std::string, size_t> Winners;
      for (const auto &[Key, Group] : Groups)
        Winners[Key] = majorityWinner(Group);
      return [Winners, KeyOf](const Setting &S) {
        return Winners.at(KeyOf(S));
      };
    };

    auto Optimal = [](const Setting &S) {
      size_t Best = 0;
      for (size_t P = 1; P < S.PlanSeconds.size(); ++P)
        if (S.PlanSeconds[P] < S.PlanSeconds[Best])
          Best = P;
      return Best;
    };
    auto Granii = [](const Setting &S) { return S.GraniiChoice; };
    auto ByConfig =
        GroupedWinner([](const Setting &S) { return S.configKey(); });
    auto ByHw = GroupedWinner([](const Setting &S) { return S.Hw; });
    auto ByGraph = GroupedWinner(
        [](const Setting &S) { return std::to_string(S.GraphIndex); });
    // The system factor does not change which composition runs fastest
    // (compositions execute identically under both baselines), so the Sys.
    // oracle degenerates to the global majority winner.
    auto BySys = GroupedWinner([](const Setting &) { return std::string("*"); });

    Table.push_back({modelName(Kind),
                     formatSpeedup(oracleSpeedup(Settings, Optimal)),
                     formatSpeedup(oracleSpeedup(Settings, Granii)),
                     formatSpeedup(oracleSpeedup(Settings, ByConfig)),
                     formatSpeedup(oracleSpeedup(Settings, ByHw)),
                     formatSpeedup(oracleSpeedup(Settings, ByGraph)),
                     formatSpeedup(oracleSpeedup(Settings, BySys))});
    std::fprintf(stderr, "[table6] %s done\n", modelName(Kind).c_str());
  }

  std::printf("Table VI: speedup of GRANII vs single-factor heuristics "
              "(inference, both baseline systems pooled)\n\n%s\n",
              renderTable(Header, Table).c_str());
  std::printf("Expected shape (paper): GRANII close to Optimal and above "
              "every single-factor oracle; Config. the strongest oracle.\n");
  return 0;
}
