//===- table3_main.cpp - Paper Table III: main geomean speedups -------------===//
//
// Reproduces Table III: geomean speedups of GRANII over the WiseGraph and
// DGL default compositions, for 100 iterations, across {hardware x mode x
// model x graph x embedding sizes}. Also reports the online overheads
// paragraph of §VI-C1 (feature extraction + selection time).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Str.h"

#include <cstdio>

using namespace granii;
using namespace granii::bench;

int main(int argc, char **argv) {
  BenchContext &Ctx = BenchContext::get();
  ReorderPolicy Reorder = consumeReorderFlag(argc, argv);
  // --json=<file> additionally writes every GRANII cell as a machine-
  // readable granii-bench-v1 record (3 repetitions per cell). --smoke
  // restricts the sweep to the simulated-H100 rows, inference mode, and two
  // small graphs: a fast, machine-independent subset CI gates on.
  std::string JsonPath = consumeValueFlag(argc, argv, "json");
  bool Smoke = consumeBoolFlag(argc, argv, "smoke");
  const int JsonReps = 3;
  BenchReport Report;
  std::printf("Table III: geomean speedups of GRANII across graphs and "
              "configurations for %d iterations\n",
              Ctx.iterations());
  std::printf("(Mode I = inference, T = training; paper-order rows; CPU is "
              "measured, A100/H100 are simulated; GRANII vertex reordering: "
              "%s)\n\n",
              reorderPolicyName(Reorder).c_str());

  struct RowSpec {
    BaselineSystem Sys;
    const char *Hw;
  };
  // Paper rows: WiseGraph on H100/A100; DGL on H100/A100/CPU.
  std::vector<RowSpec> Rows = {{BaselineSystem::WiseGraph, "h100"},
                               {BaselineSystem::WiseGraph, "a100"},
                               {BaselineSystem::DGL, "h100"},
                               {BaselineSystem::DGL, "a100"},
                               {BaselineSystem::DGL, "cpu"}};
  std::vector<bool> Modes = {false, true};
  // Graph indices into the Table II suite (BL = 4096-node lattice, AU =
  // 3500-node coauthorship stand-in: the two smallest, fully synthetic).
  std::vector<size_t> GraphIndices;
  for (size_t I = 0; I < Ctx.evalGraphs().size(); ++I)
    GraphIndices.push_back(I);
  std::vector<ModelKind> Models = allModels();
  if (Smoke) {
    Rows = {{BaselineSystem::WiseGraph, "h100"}, {BaselineSystem::DGL,
                                                  "h100"}};
    Modes = {false};
    GraphIndices = {3, 4};
    Models = {ModelKind::GCN, ModelKind::GAT};
  }

  std::vector<std::string> Header = {"System", "HW",    "Mode", "Overall",
                                     "GCN",    "GIN",   "SGC",  "TAGCN",
                                     "GAT"};
  std::vector<std::vector<std::string>> Table;

  // Per-model accumulators across every setting, for the paper's final
  // "Overall I/T" row.
  std::map<std::string, std::vector<CellResult>> PerModeAll;
  std::map<std::string, std::map<std::string, std::vector<CellResult>>>
      PerModePerModel;

  double MaxFeaturizeGpu = 0.0, MaxFeaturizeCpu = 0.0, MaxSelect = 0.0;

  for (const RowSpec &Row : Rows) {
    for (bool Training : Modes) {
      std::string Mode = Training ? "T" : "I";
      std::vector<CellResult> RowCells;
      std::vector<std::string> Line = {systemName(Row.Sys), Row.Hw, Mode};
      std::map<ModelKind, std::vector<CellResult>> PerModel;

      for (ModelKind Kind : Models) {
        for (size_t GraphIdx : GraphIndices) {
          const Graph &G = Ctx.evalGraphs()[GraphIdx];
          const std::string &Code = Ctx.evalCodes()[GraphIdx];
          for (auto [KIn, KOut] : embeddingCombos(Kind)) {
            CellResult Cell = runCell(Ctx, Row.Sys, Kind, Row.Hw, G, KIn,
                                      KOut, Training, Reorder);
            if (!JsonPath.empty()) {
              std::vector<double> Samples = {Cell.GraniiSeconds};
              for (int Rep = 1; Rep < JsonReps; ++Rep)
                Samples.push_back(runCell(Ctx, Row.Sys, Kind, Row.Hw, G, KIn,
                                          KOut, Training, Reorder)
                                      .GraniiSeconds);
              Report.add(BenchReport::makeRecord(
                  "table3/" + systemName(Row.Sys) + "/" + Row.Hw + "/" +
                      Mode + "/" + modelName(Kind) + "/" + Code + "/" +
                      std::to_string(KIn) + "x" + std::to_string(KOut),
                  G.name(), KIn, KOut, reorderPolicyName(Reorder), Samples,
                  Cell.GraniiBytes));
            }
            PerModel[Kind].push_back(Cell);
            RowCells.push_back(Cell);
            PerModeAll[Mode].push_back(Cell);
            PerModePerModel[Mode][modelName(Kind)].push_back(Cell);
            if (std::string(Row.Hw) == "cpu")
              MaxFeaturizeCpu =
                  std::max(MaxFeaturizeCpu, Cell.Sel.FeaturizeSeconds);
            else
              MaxFeaturizeGpu =
                  std::max(MaxFeaturizeGpu, Cell.Sel.FeaturizeSeconds);
            MaxSelect = std::max(MaxSelect, Cell.Sel.SelectSeconds);
          }
        }
      }
      Line.push_back(formatSpeedup(geomeanSpeedup(RowCells)));
      for (ModelKind Kind : allModels())
        Line.push_back(formatSpeedup(geomeanSpeedup(PerModel[Kind])));
      Table.push_back(std::move(Line));
      std::fprintf(stderr, "[table3] %s/%s mode %s done\n",
                   systemName(Row.Sys).c_str(), Row.Hw, Mode.c_str());
    }
  }

  for (const char *Mode : {"I", "T"}) {
    std::vector<std::string> Line = {"Overall", "-", Mode,
                                     formatSpeedup(geomeanSpeedup(
                                         PerModeAll[Mode]))};
    for (ModelKind Kind : allModels())
      Line.push_back(formatSpeedup(
          geomeanSpeedup(PerModePerModel[Mode][modelName(Kind)])));
    Table.push_back(std::move(Line));
  }

  std::printf("%s\n", renderTable(Header, Table).c_str());

  std::printf("Overheads (paper §VI-C1): feature extraction + selection are "
              "incurred once per input.\n");
  std::printf("  max featurization: %.3f ms (simulated GPU), %.1f ms "
              "(measured CPU)\n",
              MaxFeaturizeGpu * 1e3, MaxFeaturizeCpu * 1e3);
  std::printf("  max composition selection: %.3f ms\n", MaxSelect * 1e3);
  std::printf("\nPaper reference: overall geomean 1.56x (I) / 1.40x (T); "
              "largest wins for WiseGraph GCN/SGC/TAGCN on A100.\n");

  if (!JsonPath.empty()) {
    std::string WriteError;
    if (!Report.write(JsonPath, &WriteError)) {
      std::fprintf(stderr, "error: %s\n", WriteError.c_str());
      return 1;
    }
    std::fprintf(stderr, "[table3] wrote machine-readable report to %s\n",
                 JsonPath.c_str());
  }
  return 0;
}
