//===- fig01_motivation.cpp - Paper Fig. 1: static vs config vs all ---------===//
//
// Reproduces Figure 1: speedup of increasingly input-aware GCN primitive
// ordering strategies over a single fixed ordering, across graphs,
// embedding sizes, and hardware:
//   static : one fixed composition everywhere (DGL-style aggregate-first
//            dynamic normalization),
//   config : composition chosen from the model configuration only
//            (embedding sizes; ref. [17]),
//   all    : GRANII (configuration + input graph + hardware).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Stats.h"
#include "support/Str.h"

#include <cstdio>

using namespace granii;
using namespace granii::bench;

int main() {
  BenchContext &Ctx = BenchContext::get();
  GnnModel Gcn = makeModel(ModelKind::GCN);
  const int Iters = Ctx.iterations();

  std::vector<std::string> Header = {"HW", "Graph", "(Kin,Kout)",
                                     "config", "all"};
  std::vector<std::vector<std::string>> Table;
  std::vector<double> ConfigAll, AllAll;

  for (const char *Hw : {"h100", "a100", "cpu"}) {
    Executor Exec(Ctx.platform(Hw));
    Optimizer &Opt = Ctx.optimizer(ModelKind::GCN, Hw);
    for (size_t GI = 0; GI < Ctx.evalGraphs().size(); ++GI) {
      const Graph &G = Ctx.evalGraphs()[GI];
      for (auto [KIn, KOut] : embeddingCombos(ModelKind::GCN)) {
        LayerParams Params = makeLayerParams(Gcn, G, KIn, KOut, 5);
        auto TimeOf = [&](const CompositionPlan &Plan) {
          return Exec.run(Plan, Params.inputs(), Params.Stats)
              .totalSeconds(Iters, false);
        };

        // static: DGL's fixed ordering at a fixed reference configuration.
        double Static =
            TimeOf(baselinePlan(BaselineSystem::DGL, Gcn, 32, 128));
        // config: the configuration-aware reordering of [17].
        double Config =
            TimeOf(baselinePlan(BaselineSystem::DGL, Gcn, KIn, KOut));
        // all: GRANII's graph- and hardware-aware selection.
        Selection Sel = Opt.select(G, KIn, KOut);
        double All = TimeOf(Opt.promoted()[Sel.PlanIndex]) +
                     Sel.FeaturizeSeconds + Sel.SelectSeconds;

        double ConfigSpeedup = Static / Config;
        double AllSpeedup = Static / All;
        ConfigAll.push_back(ConfigSpeedup);
        AllAll.push_back(AllSpeedup);
        Table.push_back({Hw, Ctx.evalCodes()[GI],
                         "(" + std::to_string(KIn) + "," +
                             std::to_string(KOut) + ")",
                         formatSpeedup(ConfigSpeedup),
                         formatSpeedup(AllSpeedup)});
      }
    }
  }

  std::printf("Figure 1: GCN speedups over a single static primitive "
              "ordering (%d iterations)\n\n",
              Iters);
  std::printf("%s\n", renderTable(Header, Table).c_str());
  std::printf("geomean: config %s, all %s  (the gap between the columns is "
              "the input-inspection headroom GRANII captures)\n",
              formatSpeedup(geomeanOf(ConfigAll)).c_str(),
              formatSpeedup(geomeanOf(AllAll)).c_str());
  return 0;
}
