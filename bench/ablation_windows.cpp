//===- ablation_windows.cpp - Ablation: fused ternary SDDMM rule ------------===//
//
// DESIGN.md ablation: disabling the ternary [diag, sparse, diag] candidate
// rule removes the fused two-sided normalization SDDMM, forcing two-pass
// scaling in the precompute compositions. Measures the end-to-end effect
// on GCN/SGC selections.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Stats.h"
#include "support/Str.h"

#include <cstdio>

using namespace granii;
using namespace granii::bench;

int main() {
  BenchContext &Ctx = BenchContext::get();
  const int Iters = Ctx.iterations();
  const CostModel &Cost = Ctx.costFor("h100");
  HardwareModel Platform = Ctx.platform("h100");
  Executor Exec(Platform);

  std::vector<std::string> Header = {"Model", "Graph", "fused(ms)",
                                     "no-ternary(ms)", "ratio"};
  std::vector<std::vector<std::string>> Table;
  std::vector<double> Ratios;

  for (ModelKind Kind : {ModelKind::GCN, ModelKind::SGC}) {
    GnnModel Model = makeModel(Kind);
    OptimizerOptions WithTernary;
    WithTernary.Hw = Platform;
    OptimizerOptions NoTernary = WithTernary;
    NoTernary.Enum.EnableTernaryRule = false;
    Optimizer OptFused(Model, WithTernary, &Cost);
    Optimizer OptPlain(Model, NoTernary, &Cost);

    for (size_t GI = 0; GI < Ctx.evalGraphs().size(); ++GI) {
      const Graph &G = Ctx.evalGraphs()[GI];
      LayerParams Params = makeLayerParams(Model, G, 32, 128, 5);
      auto TimeOf = [&](Optimizer &Opt) {
        Selection Sel = Opt.select(G, 32, 128);
        return Exec.run(Opt.promoted()[Sel.PlanIndex], Params.inputs(),
                        Params.Stats)
            .totalSeconds(Iters, false);
      };
      double Fused = TimeOf(OptFused);
      double Plain = TimeOf(OptPlain);
      Ratios.push_back(Plain / Fused);
      Table.push_back({modelName(Kind), Ctx.evalCodes()[GI],
                       formatDouble(Fused * 1e3, 3),
                       formatDouble(Plain * 1e3, 3),
                       formatDouble(Plain / Fused, 3)});
    }
  }

  std::printf("Ablation: fused ternary [diag, sparse, diag] candidate rule "
              "(H100, (32,128), %d iterations)\n\n%s\n",
              Iters, renderTable(Header, Table).c_str());
  std::printf("geomean no-ternary/fused time ratio: %.3f (>= 1: the fused "
              "SDDMM only helps; its absence costs an extra O(E) pass in "
              "the normalization setup, amortized across iterations)\n",
              geomeanOf(Ratios));
  return 0;
}
