//===- fig08_pergraph.cpp - Paper Fig. 8: per-graph speedup series ----------===//
//
// Reproduces the per-graph data behind Figure 8: GRANII's inference
// speedup over each baseline system for every (model, hardware, graph,
// embedding sizes) point, with runtime overheads included. A value of 1.00
// means GRANII selected the baseline's own composition.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Str.h"

#include <cstdio>

using namespace granii;
using namespace granii::bench;

int main(int argc, char **argv) {
  BenchContext &Ctx = BenchContext::get();
  ReorderPolicy Reorder = consumeReorderFlag(argc, argv);
  const std::vector<std::string> &Codes = Ctx.evalCodes();

  for (auto [Sys, Hw] :
       {std::pair<BaselineSystem, const char *>{BaselineSystem::WiseGraph,
                                                "h100"},
        {BaselineSystem::WiseGraph, "a100"},
        {BaselineSystem::DGL, "h100"},
        {BaselineSystem::DGL, "a100"},
        {BaselineSystem::DGL, "cpu"}}) {
    std::printf("== %s on %s (inference, %d iterations) ==\n",
                systemName(Sys).c_str(), Hw, Ctx.iterations());
    for (ModelKind Kind : allModels()) {
      std::vector<std::string> Header = {"(Kin,Kout)"};
      for (const std::string &Code : Codes)
        Header.push_back(Code);
      std::vector<std::vector<std::string>> Table;
      for (auto [KIn, KOut] : embeddingCombos(Kind)) {
        std::vector<std::string> Line = {"(" + std::to_string(KIn) + "," +
                                         std::to_string(KOut) + ")"};
        for (const Graph &G : Ctx.evalGraphs()) {
          CellResult Cell = runCell(Ctx, Sys, Kind, Hw, G, KIn, KOut,
                                    /*Training=*/false, Reorder);
          Line.push_back(formatDouble(Cell.Speedup, 2));
        }
        Table.push_back(std::move(Line));
      }
      std::printf("%s:\n%s\n", modelName(Kind).c_str(),
                  renderTable(Header, Table).c_str());
    }
  }
  std::printf("Expected shape (paper Fig. 8): large GCN/SGC/TAGCN wins on "
              "dense graphs (RD, MC, OP) against WiseGraph on A100; DGL "
              "wins concentrated on sparser graphs (CA, BL, AU); GAT wins "
              "from reuse/recompute flips.\n");
  return 0;
}
