//===- fig09_sampling.cpp - Paper Fig. 9: sampling sensitivity --------------===//
//
// Reproduces Figure 9: both discovered compositions of GCN and GAT are run
// on 10 random neighborhood samples per sampling size of the mycielskian
// stand-in (H100); the spread within a sampling size is small, and GRANII's
// decision is stable across samples, so one selection serves all samples.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "graph/Generators.h"

#include "graph/Sampling.h"
#include "support/Stats.h"
#include "support/Str.h"

#include <cstdio>

using namespace granii;
using namespace granii::bench;

int main() {
  BenchContext &Ctx = BenchContext::get();
  Graph Mc = makeEvaluationGraph("mycielskian");
  Executor Exec(Ctx.platform("h100"));
  const int Iters = Ctx.iterations();

  for (auto [Kind, KIn, KOut] :
       {std::tuple<ModelKind, int64_t, int64_t>{ModelKind::GCN, 32, 64},
        {ModelKind::GAT, 64, 128}}) {
    GnnModel Model = makeModel(Kind);
    Optimizer &Opt = Ctx.optimizer(Kind, "h100");
    std::printf("== %s with embedding sizes (%lld, %lld) on MC / H100 ==\n",
                modelName(Kind).c_str(), static_cast<long long>(KIn),
                static_cast<long long>(KOut));

    for (int64_t SampleSize : {1000, 100, 10}) {
      // Per-composition runtimes over 10 random samples.
      std::map<std::string, std::vector<double>> Runtimes;
      std::vector<size_t> Decisions;
      for (uint64_t Seed = 0; Seed < 10; ++Seed) {
        SampledGraph S = sampleNeighborhood(Mc, SampleSize, 10, 2, Seed);
        LayerParams Params = makeLayerParams(Model, S.Sampled, KIn, KOut, 5);
        for (size_t PI = 0; PI < Opt.promoted().size(); ++PI) {
          const CompositionPlan &Plan = Opt.promoted()[PI];
          bool Viable = KIn >= KOut ? Plan.ViableGe : Plan.ViableLt;
          if (!Viable)
            continue;
          double Seconds =
              Exec.run(Plan, Params.inputs(), Params.Stats)
                  .totalSeconds(Iters, false);
          Runtimes["candidate#" + std::to_string(PI)].push_back(Seconds *
                                                                1e3);
        }
        Decisions.push_back(Opt.select(S.Sampled, KIn, KOut).PlanIndex);
      }

      std::printf("  sample size %5lld:\n",
                  static_cast<long long>(SampleSize));
      for (const auto &[Name, Times] : Runtimes)
        std::printf("    %-12s median %8.3f ms  (min %8.3f, max %8.3f over "
                    "10 samples)\n",
                    Name.c_str(), medianOf(Times), quantileOf(Times, 0.0),
                    quantileOf(Times, 1.0));
      bool Stable = true;
      for (size_t D : Decisions)
        Stable &= D == Decisions.front();
      std::printf("    GRANII decision: candidate#%zu on all samples: %s\n",
                  Decisions.front(), Stable ? "stable" : "UNSTABLE");
    }
  }
  std::printf("\n=> a single GRANII call can be assumed across sampled "
              "subgraphs (paper §VI-E)\n");
  return 0;
}
