//===- citation_attention.cpp - GAT on a citation-style graph ----------------===//
//
// Domain example: attention over a co-authorship/citation graph (the AU
// class of the paper's Table II). Shows the one decision that separates
// GAT implementations — reuse the updated embeddings in the aggregation or
// recompute them (paper §III-B) — and how GRANII's choice tracks the
// graph: on a sparse citation graph the reuse composition wins; on a dense
// discussion graph the recomputation composition can win for increasing
// embedding sizes.
//
//   $ ./examples/citation_attention
//
//===----------------------------------------------------------------------===//

#include "granii/Granii.h"

#include "graph/Generators.h"
#include "models/Baselines.h"

#include <cstdio>

using namespace granii;

namespace {

void analyze(Optimizer &Granii, const Graph &G, int64_t KIn, int64_t KOut) {
  Selection Sel = Granii.select(G, KIn, KOut);
  const CompositionPlan &Chosen = Granii.promoted()[Sel.PlanIndex];
  std::printf("  %-12s (deg %5.1f) at (%lld -> %lld): %s\n", G.name().c_str(),
              G.stats().AvgDegree, static_cast<long long>(KIn),
              static_cast<long long>(KOut),
              planRecomputesTheta(Chosen)
                  ? "recompute updated embeddings (extra GEMM, narrow "
                    "aggregation)"
                  : "reuse updated embeddings (wide aggregation, no extra "
                    "GEMM)");

  // Execute and report; the attention scores live on the graph's edges.
  GnnModel Model = Granii.model();
  LayerParams Params = makeLayerParams(Model, G, KIn, KOut, 11);
  ExecResult R = Granii.execute(Sel, Params, /*Training=*/false);
  std::printf("               forward %.3f ms, output %lld x %lld\n",
              R.ForwardSeconds * 1e3,
              static_cast<long long>(R.Output.rows()),
              static_cast<long long>(R.Output.cols()));
}

} // namespace

int main() {
  GnnModel Gat = makeModel(ModelKind::GAT);

  // Simulated H100 shows the paper's crossover crisply; swap for "cpu" to
  // measure on this machine instead.
  OptimizerOptions Options;
  Options.Hw = HardwareModel::byName("h100");
  AnalyticCostModel Cost(Options.Hw);
  Optimizer Granii(Gat, Options, &Cost);

  std::printf("GAT compositions discovered: %zu (reuse and recompute)\n\n",
              Granii.promoted().size());

  // A sparse citation/co-authorship graph vs a dense discussion graph.
  Graph Citations = makeCommunityGraph(420, 7, 0.4, 1200, 404, "citations");
  Graph Discussions = makeMycielskian(10);

  std::printf("small increasing embeddings (the paper's non-trivial GAT "
              "scenario):\n");
  analyze(Granii, Citations, 32, 128);
  analyze(Granii, Discussions, 32, 128);

  std::printf("\nlarge increasing embeddings (extra GEMM gets relatively "
              "cheaper on wide layers):\n");
  analyze(Granii, Citations, 256, 1024);
  analyze(Granii, Discussions, 256, 1024);

  std::printf("\nWiseGraph would always recompute for increasing sizes and "
              "DGL would always reuse (paper §VI-C1); GRANII picks per "
              "input.\n");
  return 0;
}
