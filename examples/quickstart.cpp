//===- quickstart.cpp - Minimal GRANII usage ---------------------------------===//
//
// The smallest end-to-end GRANII program, mirroring the paper's Figure 4:
// build a model, hand GRANII the model and the input, and run the
// accelerated layer. GRANII enumerates every re-association offline, then
// picks the best one for *this* graph and embedding sizes online.
//
//   $ ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "granii/Granii.h"

#include "graph/Generators.h"

#include <cstdio>

using namespace granii;

int main() {
  // 1. The input: a graph and node features (paper Fig. 4's `graph,
  //    node_feats`). Here: a synthetic power-law graph.
  Graph G = makeRmat(2000, 30000, 0.55, 0.2, 0.15, /*Seed=*/1);
  const int64_t FeatureDim = 64, HiddenDim = 32;

  // 2. The model, written in the message-passing style (GCN here; see
  //    modelDslSource() for the DSL text behind it).
  GnnModel Model = makeModel(ModelKind::GCN);

  // 3. GRANII setup: pick a target platform and its cost model, then run
  //    the offline stage (enumerate + prune) once. The analytic cost model
  //    works out of the box; see train_cost_models in the README for the
  //    learned one.
  OptimizerOptions Options;
  Options.Hw = HardwareModel::byName("cpu");
  AnalyticCostModel Cost(Options.Hw);
  Optimizer Granii(Model, Options, &Cost);

  std::printf("offline: %zu compositions enumerated, %zu promoted\n",
              Granii.pruneStats().Enumerated, Granii.promoted().size());

  // 4. Online stage: one selection per input, amortized over iterations.
  Selection Sel = Granii.select(G, FeatureDim, HiddenDim);
  std::printf("online: chose candidate #%zu (%s), predicted %.2f ms for %d "
              "iterations\n",
              Sel.PlanIndex,
              Sel.UsedCostModels ? "via cost models" : "via size conditions",
              Sel.PredictedSeconds * 1e3, Options.Iterations);
  std::printf("selected composition:\n%s",
              Granii.promoted()[Sel.PlanIndex].toString().c_str());

  // 5. Run it. The result is the layer output H' (N x HiddenDim).
  LayerParams Params = makeLayerParams(Model, G, FeatureDim, HiddenDim);
  ExecResult R = Granii.execute(Sel, Params, /*Training=*/false);
  std::printf("output: %lld x %lld, Frobenius norm %.3f\n",
              static_cast<long long>(R.Output.rows()),
              static_cast<long long>(R.Output.cols()),
              R.Output.frobeniusNorm());
  std::printf("forward pass: %.3f ms (+ %.3f ms one-time setup)\n",
              R.ForwardSeconds * 1e3, R.SetupSeconds * 1e3);
  return 0;
}
