//===- sage_sampling.cpp - GraphSAGE-style minibatch sampling ----------------===//
//
// Domain example from paper §VI-E: neighborhood-sampled training
// (GraphSAGE with GCN aggregation). Each minibatch is an induced subgraph
// from random seeds with a per-node neighbor fan-out; GRANII's decision is
// made once on the first sample and reused for every subsequent minibatch
// of that sampling size, amortizing the online overhead to zero.
//
//   $ ./examples/sage_sampling
//
//===----------------------------------------------------------------------===//

#include "granii/Granii.h"

#include "graph/Generators.h"
#include "graph/Sampling.h"
#include "support/Timer.h"

#include <cstdio>

using namespace granii;

int main() {
  // A large power-law graph; minibatches never touch all of it.
  Graph Full = makeRmat(20000, 200000, 0.55, 0.2, 0.15, /*Seed=*/3,
                        "social");
  std::printf("full graph: %lld nodes, %lld edges\n",
              static_cast<long long>(Full.numNodes()),
              static_cast<long long>(Full.numEdges()));

  GnnModel Model = makeModel(ModelKind::GCN);
  OptimizerOptions Options;
  Options.Hw = HardwareModel::byName("cpu");
  AnalyticCostModel Cost(Options.Hw);
  Optimizer Granii(Model, Options, &Cost);

  const int64_t FeatureDim = 32, HiddenDim = 32;
  const int64_t Seeds = 512, FanOut = 10;
  const int Hops = 2, Minibatches = 8;

  // Decide once on the first minibatch (paper: sampled subgraphs of one
  // sampling size are interchangeable for the decision).
  SampledGraph First = sampleNeighborhood(Full, Seeds, FanOut, Hops, 0);
  Selection Sel = Granii.select(First.Sampled, FeatureDim, HiddenDim);
  std::printf("decision on first minibatch (%lld nodes): candidate #%zu; "
              "featurize %.2f ms, select %.2f ms (paid once)\n",
              static_cast<long long>(First.Sampled.numNodes()), Sel.PlanIndex,
              Sel.FeaturizeSeconds * 1e3, Sel.SelectSeconds * 1e3);

  Timer Wall;
  double TotalForward = 0.0;
  bool DecisionStable = true;
  for (int Batch = 0; Batch < Minibatches; ++Batch) {
    SampledGraph S = sampleNeighborhood(Full, Seeds, FanOut, Hops,
                                        static_cast<uint64_t>(Batch));
    LayerParams Params =
        makeLayerParams(Model, S.Sampled, FeatureDim, HiddenDim, 5);
    ExecResult R = Granii.execute(Sel, Params, /*Training=*/true);
    TotalForward += R.ForwardSeconds + R.BackwardSeconds;
    // Sanity: would a fresh decision have differed? (It should not.)
    DecisionStable &=
        Granii.select(S.Sampled, FeatureDim, HiddenDim).PlanIndex ==
        Sel.PlanIndex;
    std::printf("  minibatch %d: %5lld nodes, fwd+bwd %.2f ms\n", Batch,
                static_cast<long long>(S.Sampled.numNodes()),
                (R.ForwardSeconds + R.BackwardSeconds) * 1e3);
  }

  std::printf("%d minibatches in %.1f ms wall (%.1f ms in kernels); "
              "decision %s across samples\n",
              Minibatches, Wall.millis(), TotalForward * 1e3,
              DecisionStable ? "stable" : "UNSTABLE");
  return DecisionStable ? 0 : 1;
}
