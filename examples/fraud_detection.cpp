//===- fraud_detection.cpp - Training a GCN on a transaction graph -----------===//
//
// Domain example from the paper's introduction: financial fraud detection.
// A bipartite-flavored community graph stands in for an account/merchant
// transaction network; a two-layer GCN is trained (forward + backward) with
// plain gradient descent on a synthetic fraud-score objective. GRANII picks
// the composition per layer once and the decision is reused across all
// training iterations (the amortization the paper's 100-iteration setup
// models).
//
//   $ ./examples/fraud_detection
//
//===----------------------------------------------------------------------===//

#include "granii/Granii.h"

#include "graph/Generators.h"
#include "kernels/Kernels.h"
#include "support/Timer.h"

#include <cstdio>

using namespace granii;

int main() {
  // Account communities with cross-community transaction edges.
  Graph G = makeCommunityGraph(/*NumCommunities=*/120, /*CommunitySize=*/12,
                               /*IntraProbability=*/0.5, /*InterEdges=*/2000,
                               /*Seed=*/7, "transactions");
  std::printf("transaction graph: %lld accounts, %lld edges\n",
              static_cast<long long>(G.numNodes()),
              static_cast<long long>(G.numEdges()));

  const int64_t FeatureDim = 32, HiddenDim = 16;
  GnnModel Model = makeModel(ModelKind::GCN);

  OptimizerOptions Options;
  Options.Hw = HardwareModel::byName("cpu");
  Options.Iterations = 50; // Training horizon to amortize over.
  AnalyticCostModel Cost(Options.Hw);
  Optimizer Granii(Model, Options, &Cost);

  // One selection per layer configuration, reused for every epoch.
  Selection Sel1 = Granii.select(G, FeatureDim, HiddenDim);
  Selection Sel2 = Granii.select(G, HiddenDim, HiddenDim);
  std::printf("layer 1 composition: #%zu, layer 2 composition: #%zu\n",
              Sel1.PlanIndex, Sel2.PlanIndex);

  LayerParams Layer1 = makeLayerParams(Model, G, FeatureDim, HiddenDim, 3);
  LayerParams Layer2 = makeLayerParams(Model, G, HiddenDim, HiddenDim, 4);

  // Gradient descent on L = sum(output): runTraining seeds dL/dOut = 1 and
  // returns dW, which we apply with a small step. (A real pipeline would
  // use a task loss; the execution path GRANII optimizes is identical.)
  const float LearningRate = 1e-3f;
  Timer Wall;
  double FirstLoss = 0.0, LastLoss = 0.0;
  for (int Epoch = 0; Epoch < 20; ++Epoch) {
    ExecResult R1 = Granii.execute(Sel1, Layer1, /*Training=*/true);
    Layer2.Features = R1.Output;
    ExecResult R2 = Granii.execute(Sel2, Layer2, /*Training=*/true);

    LastLoss = R2.Output.sum();
    if (Epoch == 0)
      FirstLoss = LastLoss;

    // SGD step: descend on every learned weight of both layers.
    for (auto &[Name, W] : Layer1.Weights)
      if (R1.WeightGrads.count(Name))
        kernels::axpyInto(-LearningRate, R1.WeightGrads.at(Name), W);
    for (auto &[Name, W] : Layer2.Weights)
      if (R2.WeightGrads.count(Name))
        kernels::axpyInto(-LearningRate, R2.WeightGrads.at(Name), W);
  }

  std::printf("trained 20 epochs in %.1f ms wall time\n", Wall.millis());
  std::printf("objective sum(H'): %.2f -> %.2f (decreasing => gradients "
              "flow through the selected compositions)\n",
              FirstLoss, LastLoss);
  return LastLoss < FirstLoss ? 0 : 1;
}
